package device

import (
	"fmt"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
)

// The candidate-verification loops of the attack evaluate many variants
// of one design that differ only in a few LUT truth tables or BRAM
// words. Batch packs up to 256 such variants into one simulation: every
// net becomes a group of words whose bit (64w + L mod 64) is the value
// of that net in lane L. All lanes share the parsed Description (the
// routing never changes); per-lane behaviour comes from lane-patched
// LUT truth tables and BRAM tables. LUT evaluation reduces a transposed
// truth table through a mux tree, BRAM reads gather per-lane words and
// scatter them back into bitsliced output nets, and the carry chain
// ripples lane-wise — so one pass through the evaluation order advances
// all lanes together.

// LaneWordBits is the lane capacity of one register word — the unit of
// the bitsliced representation and of the 64x64 transposes.
const LaneWordBits = 64

// MaxLaneWords is the widest supported register slot, in words.
const MaxLaneWords = 4

// MaxLanes is the lane capacity of a Batch: LaneWordBits lanes per
// register-slot word, up to MaxLaneWords words per slot.
const MaxLanes = LaneWordBits * MaxLaneWords

// LaneWords returns the words-per-register-slot a batch of n lanes runs
// at: 1, 2 or 4. There is no three-word evaluator, so widths in
// 129..192 round up to four words; width-aware sweep chunking avoids
// handing out such chunks.
func LaneWords(n int) int {
	switch {
	case n <= LaneWordBits:
		return 1
	case n <= 2*LaneWordBits:
		return 2
	default:
		return MaxLaneWords
	}
}

// laneMaskWord returns the active-lane mask of word w at the given lane
// count: all-ones for fully populated words, a partial mask for the
// word holding the last active lane, zero past it.
func laneMaskWord(lanes, w int) uint64 {
	n := lanes - w*LaneWordBits
	switch {
	case n >= LaneWordBits:
		return ^uint64(0)
	case n <= 0:
		return 0
	default:
		return 1<<uint(n) - 1
	}
}

// Batch is a bitsliced multi-lane instance of a loaded configuration.
//
// A Batch is NOT safe for concurrent use: every evaluation mutates the
// shared register file and scratch buffers, so all calls on one Batch
// must come from a single goroutine (or be externally serialized).
// Distinct Batches are independent — they share only immutable data
// (the Description, the compiled Program and the base BRAM tables) —
// so concurrent sweeps build one Batch per goroutine over the same
// loaded base.
type Batch struct {
	desc  *bitstream.Description
	lanes int
	// st is the compiled-program evaluator state; its regs/ff arrays
	// are the batch's net words (register slots are net ids), shared
	// with the walker path below.
	st *progState
	// walk switches settle to the legacy description-walking evaluator,
	// kept as the differential/bench baseline (SetWalker). Both
	// evaluators read the state's word-planar LUT rows (st.rows), so a
	// lane patch is written once and seen by both; SetWalker
	// materializes the rows the compiled path never needed.
	walk bool
	// bramTab is the shared (base) content; bramOver[b][L] overrides it
	// for lane L (global lane index) when non-nil (walker path; the
	// compiled path resolves overrides into st.tabs).
	bramTab  [][]uint64
	bramOver [][][]uint64
	inPins   map[string]uint32
	outPins  map[string]uint32
	// gather is the walker's per-block BRAM buffer: one 64-lane block of
	// per-lane table words, transposed in place into bitsliced outputs.
	gather [LaneWordBits]uint64
	// rdbuf backs ReadLaneWords calls that pass no destination.
	rdbuf [MaxLaneWords]uint64
	dirty bool
	// primed is set after the first walker settle: address-less BRAMs
	// (constant ROMs) drive the same lane masks forever and are skipped
	// afterwards. The compiled path replaces this with the prologue.
	primed bool
}

// LoadPatched configures the device from the base image, then builds a
// batch with one lane per patch set, applying each set's frame patches
// to that lane only. This is the simulator analogue of loading the base
// bitstream once and stepping through candidates by partial
// reconfiguration: patches must stay inside the CLB or BRAM frame
// regions (header or description frames would change the shared
// structure and are refused). An empty PatchSet yields an unmodified
// lane. Unlike PartialReconfig — a debug port fused off on secured
// devices — this is the attacker's own model of the victim, so
// encrypted base images are accepted.
func (f *FPGA) LoadPatched(img []byte, patches []bitstream.PatchSet) (*Batch, error) {
	if err := f.Load(img); err != nil {
		return nil, err
	}
	return f.BatchOf(patches)
}

// BatchOf builds a batch over the configuration already loaded into f,
// skipping the base image decode — the fast path for consecutive
// candidate sweeps over one base. The caller owns the knowledge that
// the loaded configuration is the intended base.
func (f *FPGA) BatchOf(patches []bitstream.PatchSet) (*Batch, error) {
	if len(patches) < 1 || len(patches) > MaxLanes {
		return nil, fmt.Errorf("device: lane count must be between 1 and %d, got %d", MaxLanes, len(patches))
	}
	f.tel.Counter("device.batch_passes").Inc()
	f.tel.Counter("device.batch_lanes").Add(int64(len(patches)))
	if !f.Loaded() {
		return nil, fmt.Errorf("device: BatchOf before successful Load")
	}
	regions, err := bitstream.ParseRegions(f.fdri)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	desc := f.desc
	b := &Batch{
		desc:     desc,
		lanes:    len(patches),
		bramTab:  f.bramTab,
		bramOver: make([][][]uint64, len(desc.BRAMs)),
		inPins:   f.inPins,
		outPins:  f.outPins,
		dirty:    true,
	}
	b.st = newProgState(f.prog, f.lutTT, f.bramTab, len(patches))
	// Index the CLB frames: which LUTs must be re-read when a frame is
	// patched. Loc.Frame is relative to the CLB region.
	lutsByFrame := make(map[int][]int)
	for i, rec := range desc.LUTs {
		lutsByFrame[rec.Loc.Frame] = append(lutsByFrame[rec.Loc.Frame], i)
	}
	descStart := regions.DescOff / bitstream.FrameBytes
	bramStart := regions.BRAMOff / bitstream.FrameBytes
	totalFrames := regions.TotalLen / bitstream.FrameBytes
	bramPatched := false
	for lane, ps := range patches {
		var bramRegion []byte
		var bramFrames []int
		for _, fp := range ps {
			if len(fp.Data) != bitstream.FrameBytes {
				return nil, fmt.Errorf("device: lane %d: frame patch must be %d bytes, got %d",
					lane, bitstream.FrameBytes, len(fp.Data))
			}
			switch {
			case fp.Frame < 0 || fp.Frame >= totalFrames:
				return nil, fmt.Errorf("device: lane %d: frame %d out of range", lane, fp.Frame)
			case fp.Frame == 0:
				return nil, fmt.Errorf("device: lane %d: header frame cannot be lane-patched", lane)
			case fp.Frame < descStart: // CLB region
				for _, li := range lutsByFrame[fp.Frame-1] {
					loc := desc.LUTs[li].Loc
					loc.Frame = 0 // read from the standalone patched frame
					tt, err := bitstream.ReadLUT(fp.Data, loc)
					if err != nil {
						return nil, fmt.Errorf("device: lane %d: LUT %d: %w", lane, li, err)
					}
					b.setLaneTT(li, lane, tt)
				}
			case fp.Frame < bramStart:
				return nil, fmt.Errorf("device: lane %d: description frame %d cannot be lane-patched",
					lane, fp.Frame)
			default: // BRAM region
				if bramRegion == nil {
					bramRegion = append([]byte(nil),
						f.fdri[regions.BRAMOff:regions.BRAMOff+regions.BRAMLen]...)
				}
				copy(bramRegion[(fp.Frame-bramStart)*bitstream.FrameBytes:], fp.Data)
				bramFrames = append(bramFrames, fp.Frame-bramStart)
			}
		}
		if bramRegion != nil {
			if err := b.rebuildBRAM(lane, bramRegion, bramFrames); err != nil {
				return nil, fmt.Errorf("device: lane %d: %w", lane, err)
			}
			bramPatched = true
		}
	}
	if bramPatched {
		// Lane overrides may hit constant ROMs; recompute their outputs.
		b.st.prologue()
	}
	return b, nil
}

// setLaneTT installs a truth table into one lane of a LUT's transposed
// rows and switches the LUT's compiled form to read them (an in-place
// site rewrite below 65 lanes, a masked reduce fixup above).
func (b *Batch) setLaneTT(lut, lane int, tt boolfn.TT) {
	b.st.patchLUTLane(lut, lane, tt)
}

// rebuildBRAM re-decodes the BRAM tables whose content overlaps the
// patched frames of one lane's BRAM region and installs them as lane
// overrides.
func (b *Batch) rebuildBRAM(lane int, region []byte, frames []int) error {
	for i, rec := range b.desc.BRAMs {
		entries := 1 << len(rec.Addr)
		lo, hi := rec.ContentOff, rec.ContentOff+8*entries
		if hi > len(region) {
			return fmt.Errorf("BRAM %d content out of range", i)
		}
		touched := false
		for _, fr := range frames {
			if fr*bitstream.FrameBytes < hi && (fr+1)*bitstream.FrameBytes > lo {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		tab := make([]uint64, entries)
		for e := 0; e < entries; e++ {
			off := lo + 8*e
			var w uint64
			for k := 0; k < 8; k++ {
				w = w<<8 | uint64(region[off+k])
			}
			tab[e] = w
		}
		if b.bramOver[i] == nil {
			b.bramOver[i] = make([][]uint64, MaxLanes)
		}
		b.bramOver[i][lane] = tab
		b.st.setTabLane(i, lane, tab)
	}
	return nil
}

// SetWalker switches the batch between the compiled-program evaluator
// (default) and the legacy description-walking evaluator. Both run over
// the same register file and lane patches, so results are identical;
// the walker is kept as the differential and benchmark baseline.
func (b *Batch) SetWalker(on bool) {
	if on {
		// The walker reads and latches the ff array directly; fold any
		// inline flip-flop state back into it first. It also evaluates
		// every LUT through its rows, including the Shannon-form ones the
		// compiled path never materialized.
		b.st.materializeFF()
		b.st.materializeRows()
	}
	b.walk = on
}

// Lanes reports the number of active lanes.
func (b *Batch) Lanes() int { return b.lanes }

// Words reports the register-slot width in 64-lane words
// (LaneWords(Lanes())).
func (b *Batch) Words() int { return b.st.words }

// SetInputLanes drives an input pin with a 64-lane mask pattern: lane L
// sees bit (L mod 64), i.e. the pattern repeats across every 64-lane
// word. The control protocol only ever drives all-lanes-0 or
// all-lanes-1, which the repetition extends to any width; per-lane
// drives beyond 64 lanes go through SetInputLaneWords.
func (b *Batch) SetInputLanes(name string, mask uint64) {
	net, ok := b.inPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no input pin %q", name))
	}
	W := b.st.words
	ni := int(net) * W
	for w := 0; w < W; w++ {
		b.st.regs[ni+w] = mask
	}
	b.dirty = true
}

// SetInputLaneWords drives an input pin with per-lane values across the
// full width: bit L%64 of masks[L/64] is the value seen by lane L.
// Missing high words are driven to zero.
func (b *Batch) SetInputLaneWords(name string, masks []uint64) {
	net, ok := b.inPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no input pin %q", name))
	}
	W := b.st.words
	ni := int(net) * W
	for w := 0; w < W; w++ {
		var m uint64
		if w < len(masks) {
			m = masks[w]
		}
		b.st.regs[ni+w] = m
	}
	b.dirty = true
}

// ReadLanes samples an output pin after the last clock edge and returns
// the lane mask of the first 64 lanes; bits above Lanes() are zero.
// Batches wider than 64 lanes read the full width with ReadLaneWords.
func (b *Batch) ReadLanes(name string) uint64 {
	net, ok := b.outPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no output pin %q", name))
	}
	if b.dirty {
		b.settle()
	}
	return b.st.regs[int(net)*b.st.words] & laneMaskWord(b.lanes, 0)
}

// ReadLaneWords samples an output pin across the full lane width,
// appending Words() lane-mask words to dst (pass nil, or a previous
// result to reuse its backing array): bit L%64 of word L/64 is lane L's
// value. Every bit at or above Lanes() — including the partial top word
// of a width like 100 — is masked to zero, so stale register content
// from inactive lanes never leaks to callers.
func (b *Batch) ReadLaneWords(name string, dst []uint64) []uint64 {
	net, ok := b.outPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no output pin %q", name))
	}
	if b.dirty {
		b.settle()
	}
	if dst == nil {
		dst = b.rdbuf[:0]
	}
	W := b.st.words
	base := int(net) * W
	for w := 0; w < W; w++ {
		dst = append(dst, b.st.regs[base+w]&laneMaskWord(b.lanes, w))
	}
	return dst
}

// ClockBatch advances all lanes one cycle: evaluate, then latch every
// flip-flop lane-wise.
func (b *Batch) ClockBatch() {
	if b.walk {
		b.walkSettle()
		b.st.latch()
	} else {
		b.st.clock()
	}
	b.dirty = true
}

// settle evaluates the combinational fabric for all lanes at once:
// the compiled program by default, or the legacy walker when selected.
func (b *Batch) settle() {
	if !b.walk {
		b.st.settle()
		b.dirty = false
		return
	}
	b.walkSettle()
}

// walkSettle is the original description-walking evaluator, running
// over the same register file as the compiled program. At widths beyond
// one word it walks every 64-lane block with the same per-item logic,
// staying the ground truth the compiled kernels are pinned against.
func (b *Batch) walkSettle() {
	W := b.st.words
	nets := b.st.regs
	for w := 0; w < W; w++ {
		nets[w] = 0
		nets[W+w] = ^uint64(0)
	}
	for i, ff := range b.desc.FFs {
		qi := int(ff.Q) * W
		for w := 0; w < W; w++ {
			nets[qi+w] = b.st.ff[i*W+w]
		}
	}
	for _, item := range b.desc.Eval {
		switch item.Kind {
		case bitstream.EvalLUT:
			rec := &b.desc.LUTs[item.Index]
			rows := b.st.rows[item.Index]
			if rec.O5 != bitstream.NoNet {
				// Fractured LUT: a6 selects the half (Fig 4); only the
				// first five inputs address within a half.
				k := min(len(rec.Inputs), 5)
				b.walkReduce(rows, 0, k, rec.Inputs, rec.O5)
				b.walkReduce(rows, 32, k, rec.Inputs, rec.O6)
			} else {
				b.walkReduce(rows, 0, len(rec.Inputs), rec.Inputs, rec.O6)
			}
		case bitstream.EvalBRAM:
			rec := &b.desc.BRAMs[item.Index]
			if len(rec.Addr) == 0 && b.primed {
				// Constant ROM: its output lane masks were computed on the
				// first settle and nothing can change them.
				continue
			}
			over := b.bramOver[item.Index]
			for w := 0; w < W; w++ {
				bl := b.lanes - w*LaneWordBits
				if bl <= 0 {
					break
				}
				if bl > LaneWordBits {
					bl = LaneWordBits
				}
				words := b.gather[:bl]
				for L := range words {
					addr := 0
					for i, a := range rec.Addr {
						addr |= int(nets[int(a)*W+w]>>uint(L)&1) << uint(i)
					}
					tab := b.bramTab[item.Index]
					if over != nil && over[w*LaneWordBits+L] != nil {
						tab = over[w*LaneWordBits+L]
					}
					words[L] = tab[addr]
				}
				// Scatter the per-lane words back into bitsliced output
				// nets: a 64x64 bit-matrix transpose turns "bit bi of
				// words[L]" into "bit L of row bi" in one pass, far cheaper
				// than a per-out per-lane gather loop. Rows for lanes >=
				// b.lanes carry stale bits, which is harmless: bit L of any
				// net only ever depends on bit L of other nets, and
				// ReadLanes/ReadLaneWords mask to active lanes.
				transpose64(&b.gather)
				for bi, out := range rec.Out {
					nets[int(out)*W+w] = b.gather[bi]
				}
			}
		case bitstream.EvalAdder:
			rec := &b.desc.Adders[item.Index]
			for w := 0; w < W; w++ {
				var carry uint64
				for i := range rec.A {
					av, bv := nets[int(rec.A[i])*W+w], nets[int(rec.B[i])*W+w]
					x := av ^ bv
					nets[int(rec.Sum[i])*W+w] = x ^ carry
					carry = av&bv | carry&x
				}
			}
		}
	}
	b.dirty = false
	b.primed = true
}

// walkReduce is the walker's LUT evaluation over the word-planar rows:
// the single-word mux reduce below 65 lanes, one per-word reduce per
// 64-lane block above. off selects the fractured-LUT half (0 or 32)
// within each word's block.
func (b *Batch) walkReduce(rows []uint64, off, k int, inputs []uint32, out uint32) {
	W := b.st.words
	if W == 1 {
		b.st.regs[out] = b.reduce(rows[off:], k, inputs)
		return
	}
	for w := 0; w < W; w++ {
		b.st.regs[int(out)*W+w] = b.st.reduceWord(rows[w*64+off:], k, inputs, w)
	}
}

// transpose64 transposes a 64x64 bit matrix in place (the recursive
// block-swap of Hacker's Delight 7-3, in LSB-first orientation): after
// the call, bit L of row bi is the old bit bi of row L. Each halving
// level is written out with its constant shift and mask — the compiler
// then proves the row indices in range and drops the bounds checks,
// which is worth ~35% on this hot path.
func transpose64(a *[64]uint64) {
	for k := 0; k < 32; k++ {
		t := (a[k]>>32 ^ a[k+32]) & 0x00000000FFFFFFFF
		a[k] ^= t << 32
		a[k+32] ^= t
	}
	for b := 0; b < 64; b += 32 {
		for k := b; k < b+16; k++ {
			t := (a[k]>>16 ^ a[k+16]) & 0x0000FFFF0000FFFF
			a[k] ^= t << 16
			a[k+16] ^= t
		}
	}
	for b := 0; b < 64; b += 16 {
		for k := b; k < b+8; k++ {
			t := (a[k]>>8 ^ a[k+8]) & 0x00FF00FF00FF00FF
			a[k] ^= t << 8
			a[k+8] ^= t
		}
	}
	for b := 0; b < 64; b += 8 {
		for k := b; k < b+4; k++ {
			t := (a[k]>>4 ^ a[k+4]) & 0x0F0F0F0F0F0F0F0F
			a[k] ^= t << 4
			a[k+4] ^= t
		}
	}
	for b := 0; b < 64; b += 4 {
		for k := b; k < b+2; k++ {
			t := (a[k]>>2 ^ a[k+2]) & 0x3333333333333333
			a[k] ^= t << 2
			a[k+2] ^= t
		}
	}
	for k := 0; k < 64; k += 2 {
		t := (a[k]>>1 ^ a[k+1]) & 0x5555555555555555
		a[k] ^= t << 1
		a[k+1] ^= t
	}
}

// reduce collapses the first 1<<k transposed truth-table rows through a
// mux tree addressed by the LUT's input nets — the bitsliced equivalent
// of TT.Eval over k inputs for all lanes at once.
func (b *Batch) reduce(rows []uint64, k int, inputs []uint32) uint64 {
	if k == 0 {
		return rows[0]
	}
	// The top mux level reads straight from the rows, halving the work
	// compared to copying all 1<<k rows into scratch first.
	half := 1 << uint(k-1)
	sel := b.st.regs[inputs[k-1]]
	v := b.st.rscratch[:half]
	for m := 0; m < half; m++ {
		v[m] = sel&rows[m|half] | ^sel&rows[m]
	}
	for j := k - 2; j >= 0; j-- {
		sel = b.st.regs[inputs[j]]
		half >>= 1
		for m := 0; m < half; m++ {
			v[m] = sel&v[m|half] | ^sel&v[m]
		}
	}
	return v[0]
}
