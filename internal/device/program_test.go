package device

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/hdl"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
)

// keystreamBatchToggling mirrors hdl.GenerateKeystreamBatch but flips
// the batch between the compiled and walker evaluators every third
// clock, exercising the inline-FF materialization handoff mid-protocol.
func keystreamBatchToggling(b *Batch, n int) [][]uint32 {
	clocks := 0
	tick := func() {
		b.SetWalker(clocks/3%2 == 1)
		clocks++
		b.ClockBatch()
	}
	for i := 0; i < 4; i++ {
		var words [32]uint64
		for bit := 0; bit < 32; bit++ {
			if testIV[i]>>uint(bit)&1 == 1 {
				words[bit] = ^uint64(0)
			}
			b.SetInputLanes(fmt.Sprintf("%s[%d]", hdl.IVPort(i), bit), words[bit])
		}
	}
	ctl := func(load, init, run, gen bool) {
		all := func(v bool) uint64 {
			if v {
				return ^uint64(0)
			}
			return 0
		}
		b.SetInputLanes(hdl.PortLoad, all(load))
		b.SetInputLanes(hdl.PortInit, all(init))
		b.SetInputLanes(hdl.PortRun, all(run))
		b.SetInputLanes(hdl.PortGen, all(gen))
	}
	ctl(true, false, true, false)
	tick()
	ctl(false, true, true, false)
	for i := 0; i < 32; i++ {
		tick()
	}
	ctl(false, false, true, true)
	tick()
	out := make([][]uint32, b.Lanes())
	for L := range out {
		out[L] = make([]uint32, n)
	}
	var buf []uint64
	for t := 0; t < n; t++ {
		tick()
		for i := 0; i < 32; i++ {
			buf = b.ReadLaneWords(fmt.Sprintf("%s[%d]", hdl.PortZ, i), buf[:0])
			for L := range out {
				if buf[L>>6]>>uint(L&63)&1 == 1 {
					out[L][t] |= 1 << uint(i)
				}
			}
		}
	}
	return out
}

// miniBatch assembles a Batch directly from an in-memory Description,
// bypassing the bitstream container: the compiled program and the walker
// then run the same hand-built design, which lets the edge-case tests
// below reach shapes the SNOW 3G toolchain never emits (constant-tied
// inputs, flip-flop swap rings, LUT outputs driving Q nets).
func miniBatch(t testing.TB, desc *bitstream.Description, tts []boolfn.TT, tabs [][]uint64, lanes int) *Batch {
	t.Helper()
	prog := compile(desc, tts, obs.New())
	b := &Batch{
		desc:     desc,
		lanes:    lanes,
		bramTab:  tabs,
		bramOver: make([][][]uint64, len(desc.BRAMs)),
		inPins:   map[string]uint32{},
		outPins:  map[string]uint32{},
		dirty:    true,
	}
	for _, p := range desc.Ports {
		if p.Dir == bitstream.In {
			b.inPins[p.Name] = p.Net
		} else {
			b.outPins[p.Name] = p.Net
		}
	}
	b.st = newProgState(prog, tts, tabs, lanes)
	return b
}

// diffCycles drives two identically-built batches — one compiled, one
// walking the description — through the same stimulus and requires every
// output to agree on every cycle.
func diffCycles(t *testing.T, mk func() *Batch, cycles int, drive func(b *Batch, cycle int)) {
	t.Helper()
	cb, wb := mk(), mk()
	wb.SetWalker(true)
	outs := make([]string, 0, len(cb.outPins))
	for name := range cb.outPins {
		outs = append(outs, name)
	}
	var gbuf, wbuf []uint64
	for cy := 0; cy < cycles; cy++ {
		if drive != nil {
			drive(cb, cy)
			drive(wb, cy)
		}
		for _, o := range outs {
			gbuf = cb.ReadLaneWords(o, gbuf[:0])
			wbuf = wb.ReadLaneWords(o, wbuf[:0])
			for w := range gbuf {
				if gbuf[w] != wbuf[w] {
					t.Fatalf("cycle %d output %q word %d: compiled %016x walker %016x",
						cy, o, w, gbuf[w], wbuf[w])
				}
			}
		}
		cb.ClockBatch()
		wb.ClockBatch()
	}
}

// TestCompileFoldsConstantInputs pins the constant-folding compile path:
// a LUT with two of three inputs tied to the constant nets must fold to
// a function of the live input alone, and still match the walker, which
// evaluates the full table against the always-0/always-1 nets.
func TestCompileFoldsConstantInputs(t *testing.T) {
	desc := &bitstream.Description{
		NumNets: 4,
		Ports: []bitstream.Port{
			{Name: "in", Dir: bitstream.In, Net: 2},
			{Name: "out", Dir: bitstream.Out, Net: 3},
		},
		LUTs: []bitstream.LUTRec{
			{Inputs: []uint32{2, 0, 1}, O6: 3, O5: bitstream.NoNet},
		},
		Eval: []bitstream.EvalItem{{Kind: bitstream.EvalLUT, Index: 0}},
	}
	// f(a,b,c) = a xor b xor c with b tied to 0, c tied to 1 => ^a.
	tts := []boolfn.TT{boolfn.TT(0x9696969696969696)}
	prog := compile(desc, tts, obs.New())
	if prog.stats.FoldedInputs != 2 {
		t.Fatalf("FoldedInputs = %d, want 2", prog.stats.FoldedInputs)
	}
	diffCycles(t, func() *Batch { return miniBatch(t, desc, tts, nil, 64) }, 4,
		func(b *Batch, cy int) { b.SetInputLanes("in", uint64(0x0123456789ABCDEF)<<uint(cy)) })
}

// TestCompileLUTEdges covers the degenerate LUT shapes: a zero-input
// constant LUT and a fractured LUT with fewer than five shared inputs,
// both against the walker's reduce.
func TestCompileLUTEdges(t *testing.T) {
	t.Run("const-k0", func(t *testing.T) {
		desc := &bitstream.Description{
			NumNets: 4,
			Ports: []bitstream.Port{
				{Name: "in", Dir: bitstream.In, Net: 2},
				{Name: "out", Dir: bitstream.Out, Net: 3},
			},
			LUTs: []bitstream.LUTRec{
				{Inputs: nil, O6: 3, O5: bitstream.NoNet},
			},
			Eval: []bitstream.EvalItem{{Kind: bitstream.EvalLUT, Index: 0}},
		}
		for _, tt := range []boolfn.TT{0, 1, ^boolfn.TT(0)} {
			tts := []boolfn.TT{tt}
			diffCycles(t, func() *Batch { return miniBatch(t, desc, tts, nil, 64) }, 2, nil)
		}
	})
	t.Run("fractured-2in", func(t *testing.T) {
		desc := &bitstream.Description{
			NumNets: 6,
			Ports: []bitstream.Port{
				{Name: "a", Dir: bitstream.In, Net: 2},
				{Name: "b", Dir: bitstream.In, Net: 3},
				{Name: "o5", Dir: bitstream.Out, Net: 4},
				{Name: "o6", Dir: bitstream.Out, Net: 5},
			},
			LUTs: []bitstream.LUTRec{
				{Inputs: []uint32{2, 3}, O6: 5, O5: 4},
			},
			Eval: []bitstream.EvalItem{{Kind: bitstream.EvalLUT, Index: 0}},
		}
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 8; trial++ {
			tts := []boolfn.TT{boolfn.TT(rng.Uint64())}
			diffCycles(t, func() *Batch { return miniBatch(t, desc, tts, nil, 64) }, 4,
				func(b *Batch, cy int) {
					b.SetInputLanes("a", rowPattern(trial, cy))
					b.SetInputLanes("b", rowPattern(cy, trial+1))
				})
		}
	})
}

func rowPattern(i, j int) uint64 {
	return 0x9E3779B97F4A7C15*uint64(i+1) ^ 0xC2B2AE3D27D4EB4F*uint64(j+1)
}

// TestClockEdgePlanner pins both halves of the fused clock edge: a
// flip-flop swap ring forces the parallel-move sequentializer to spill
// through a temporary, and a LUT driving a Q net directly must disable
// the fused path entirely and fall back to inject/latch — in both cases
// bit-identically to the walker.
func TestClockEdgePlanner(t *testing.T) {
	t.Run("swap-ring-spill", func(t *testing.T) {
		desc := &bitstream.Description{
			NumNets: 4,
			Ports: []bitstream.Port{
				{Name: "p", Dir: bitstream.Out, Net: 2},
				{Name: "q", Dir: bitstream.Out, Net: 3},
			},
			FFs: []bitstream.FFRec{
				{Init: true, Q: 2, D: 3},
				{Init: false, Q: 3, D: 2},
			},
		}
		mk := func() *Batch { return miniBatch(t, desc, nil, nil, 64) }
		b := mk()
		if !b.st.prog.ffSafe {
			t.Fatal("swap ring should keep the fused clock edge")
		}
		diffCycles(t, mk, 6, nil)
		// And the values actually swap.
		b2 := mk()
		for cy := 0; cy < 4; cy++ {
			p, q := b2.ReadLanes("p"), b2.ReadLanes("q")
			if cy%2 == 0 && (p != ^uint64(0) || q != 0) {
				t.Fatalf("cycle %d: p=%016x q=%016x, want swap phase 0", cy, p, q)
			}
			if cy%2 == 1 && (p != 0 || q != ^uint64(0)) {
				t.Fatalf("cycle %d: p=%016x q=%016x, want swap phase 1", cy, p, q)
			}
			b2.ClockBatch()
		}
	})
	t.Run("lut-drives-q-fallback", func(t *testing.T) {
		// LUT writes net 3, which is also FF 0's Q: the settle recomputes
		// the Q net combinationally, so Q registers do not survive the
		// settle and the fused edge must be refused.
		desc := &bitstream.Description{
			NumNets: 5,
			Ports: []bitstream.Port{
				{Name: "in", Dir: bitstream.In, Net: 2},
				{Name: "out", Dir: bitstream.Out, Net: 4},
			},
			FFs: []bitstream.FFRec{
				{Init: false, Q: 3, D: 4},
			},
			LUTs: []bitstream.LUTRec{
				{Inputs: []uint32{2}, O6: 3, O5: bitstream.NoNet}, // ^in -> Q net
				{Inputs: []uint32{3}, O6: 4, O5: bitstream.NoNet}, // copy -> out
			},
			Eval: []bitstream.EvalItem{
				{Kind: bitstream.EvalLUT, Index: 0},
				{Kind: bitstream.EvalLUT, Index: 1},
			},
		}
		tts := []boolfn.TT{boolfn.TT(0x5555555555555555), boolfn.TT(0xAAAAAAAAAAAAAAAA)}
		b := miniBatch(t, desc, tts, nil, 64)
		if b.st.prog.ffSafe {
			t.Fatal("LUT driving a Q net must disable the fused clock edge")
		}
		diffCycles(t, func() *Batch { return miniBatch(t, desc, tts, nil, 64) }, 6,
			func(b *Batch, cy int) { b.SetInputLanes("in", rowPattern(cy, cy)) })
	})
}

// TestPartialWidthMasking pins the stale-bit contract for partial
// batches at every word count: register words above the active lane
// count may carry garbage internally (the evaluators compute full
// 64-lane words), but ReadLanes and ReadLaneWords must mask them off —
// in both evaluators, for widths below, straddling and above each
// 64-lane word boundary.
func TestPartialWidthMasking(t *testing.T) {
	fx := newBatchFixture(t)
	for _, lanes := range []int{1, 3, 63, 64, 65, 100, 127, 128, 129, 255, 256} {
		mkDev := func(walk bool) *Batch {
			dev := New([bitstream.KeySize]byte{})
			batch, err := dev.LoadPatched(fx.img, make([]bitstream.PatchSet, lanes))
			if err != nil {
				t.Fatal(err)
			}
			batch.SetWalker(walk)
			return batch
		}
		cb, wb := mkDev(false), mkDev(true)
		if want := LaneWords(lanes); cb.Words() != want {
			t.Fatalf("lanes=%d: Words() = %d, want %d", lanes, cb.Words(), want)
		}
		for _, b := range []*Batch{cb, wb} {
			// Drive the run input high so outputs carry live data, then
			// clock a few cycles into the protocol.
			b.SetInputLanes(hdl.PortRun, ^uint64(0))
			for i := 0; i < 4; i++ {
				b.ClockBatch()
			}
		}
		var gbuf, wbuf []uint64
		for name := range cb.outPins {
			gbuf = cb.ReadLaneWords(name, gbuf[:0])
			wbuf = wb.ReadLaneWords(name, wbuf[:0])
			if len(gbuf) != LaneWords(lanes) {
				t.Fatalf("lanes=%d %q: ReadLaneWords returned %d words", lanes, name, len(gbuf))
			}
			for w := range gbuf {
				if gbuf[w] != wbuf[w] {
					t.Fatalf("lanes=%d %q word %d: compiled %016x != walker %016x",
						lanes, name, w, gbuf[w], wbuf[w])
				}
				if mask := laneMaskWord(lanes, w); gbuf[w]&^mask != 0 {
					t.Fatalf("lanes=%d %q word %d: bits above lane count leak: %016x (mask %016x)",
						lanes, name, w, gbuf[w], mask)
				}
			}
			if g := cb.ReadLanes(name); g != gbuf[0] {
				t.Fatalf("lanes=%d %q: ReadLanes %016x != ReadLaneWords[0] %016x", lanes, name, g, gbuf[0])
			}
		}
	}
}

// TestSetInputLaneWordsMasking pins the per-word input contract on a
// combinational inverter: SetInputLaneWords drives distinct per-word
// patterns, missing high words are zeroed, and the inverted output
// reads back masked to the active lanes in both evaluators.
func TestSetInputLaneWordsMasking(t *testing.T) {
	desc := &bitstream.Description{
		NumNets: 4,
		Ports: []bitstream.Port{
			{Name: "in", Dir: bitstream.In, Net: 2},
			{Name: "out", Dir: bitstream.Out, Net: 3},
		},
		LUTs: []bitstream.LUTRec{
			{Inputs: []uint32{2}, O6: 3, O5: bitstream.NoNet},
		},
		Eval: []bitstream.EvalItem{{Kind: bitstream.EvalLUT, Index: 0}},
	}
	tts := []boolfn.TT{boolfn.TT(0x5555555555555555)} // ^in
	for _, lanes := range []int{1, 63, 65, 100, 129, 256} {
		W := LaneWords(lanes)
		in := make([]uint64, W)
		for w := range in {
			in[w] = rowPattern(lanes, w)
		}
		for _, walk := range []bool{false, true} {
			b := miniBatch(t, desc, tts, nil, lanes)
			b.SetWalker(walk)
			// Drive only the low words: the high ones must read as zero
			// inputs (inverted: all-ones, masked).
			b.SetInputLaneWords("in", in[:1+(W-1)/2])
			b.ClockBatch()
			got := b.ReadLaneWords("out", nil)
			for w := 0; w < W; w++ {
				var driven uint64
				if w < 1+(W-1)/2 {
					driven = in[w]
				}
				if want := ^driven & laneMaskWord(lanes, w); got[w] != want {
					t.Fatalf("lanes=%d walker=%v word %d: out %016x, want %016x",
						lanes, walk, w, got[w], want)
				}
			}
		}
	}
}

// TestCompiledMatchesWalkerKeystream runs the full keystream protocol
// over mixed patched lanes in both evaluator modes, including a
// mid-stream evaluator switch (which exercises the inline-FF
// materialization handoff in both directions). 100 lanes puts the
// handoff on the two-word path with a partial top word.
func TestCompiledMatchesWalkerKeystream(t *testing.T) {
	fx := newBatchFixture(t)
	rng := rand.New(rand.NewSource(7))
	const lanes = 100
	patches := make([]bitstream.PatchSet, lanes)
	for L := 0; L < lanes; L++ {
		switch rng.Intn(3) {
		case 0: // clean lane
		case 1:
			patches[L] = fx.diff(t, fx.withLUT(t, rng.Intn(len(fx.desc.LUTs)), boolfn.TT(rng.Uint64())))
		default:
			bram := rng.Intn(len(fx.desc.BRAMs))
			entry := rng.Intn(1 << len(fx.desc.BRAMs[bram].Addr))
			patches[L] = fx.diff(t, fx.withBRAMWord(t, bram, entry, rng.Uint64()))
		}
	}
	mk := func() *Batch {
		dev := New([bitstream.KeySize]byte{})
		b, err := dev.LoadPatched(fx.img, patches)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	const n = 8
	compiled, walker, mixed := mk(), mk(), mk()
	walker.SetWalker(true)
	zc := hdl.GenerateKeystreamBatch(compiled, testIV, n)
	zw := hdl.GenerateKeystreamBatch(walker, testIV, n)
	zm := keystreamBatchToggling(mixed, n)
	for L := 0; L < lanes; L++ {
		if !equalWords(zc[L], zw[L]) {
			t.Fatalf("lane %d: compiled %08x != walker %08x", L, zc[L], zw[L])
		}
		if !equalWords(zc[L], zm[L]) {
			t.Fatalf("lane %d: compiled %08x != mode-switching %08x", L, zc[L], zm[L])
		}
	}
}

// TestCompiledMatchesWalkerAfterPartialReconfig pins the patch-only
// reconfiguration path: after PartialReconfig rewrites a CLB frame and a
// BRAM frame, a batch built over the patched device must agree between
// evaluators and with a scalar device loaded from the equivalent full
// image.
func TestCompiledMatchesWalkerAfterPartialReconfig(t *testing.T) {
	fx := newBatchFixture(t)
	rng := rand.New(rand.NewSource(21))
	mod := fx.withLUT(t, rng.Intn(len(fx.desc.LUTs)), boolfn.TT(rng.Uint64()))
	// Stack a BRAM change on top of the LUT change.
	{
		parsed, err := bitstream.ParsePackets(mod)
		if err != nil {
			t.Fatal(err)
		}
		fdri := parsed.FDRI(mod)
		bram := rng.Intn(len(fx.desc.BRAMs))
		entry := rng.Intn(1 << len(fx.desc.BRAMs[bram].Addr))
		off := fx.regions.BRAMOff + fx.desc.BRAMs[bram].ContentOff + 8*entry
		w := rng.Uint64()
		for k := 7; k >= 0; k-- {
			fdri[off+k] = byte(w)
			w >>= 8
		}
	}
	dev := New([bitstream.KeySize]byte{})
	if err := dev.Load(fx.img); err != nil {
		t.Fatal(err)
	}
	for _, fp := range fx.diff(t, mod) {
		if err := dev.PartialReconfig(fp.Frame, fp.Data); err != nil {
			t.Fatal(err)
		}
	}
	// 70 clean lanes over the patched base: the batch straddles a word
	// boundary, and every lane must reproduce the reconfigured design.
	const n, lanes = 6, 70
	mkBatch := func(walk bool) [][]uint32 {
		b, err := dev.BatchOf(make([]bitstream.PatchSet, lanes))
		if err != nil {
			t.Fatal(err)
		}
		b.SetWalker(walk)
		return hdl.GenerateKeystreamBatch(b, testIV, n)
	}
	zc, zw := mkBatch(false), mkBatch(true)
	zs := scalarKeystream(t, mod, n)
	for L := 0; L < lanes; L++ {
		if !equalWords(zc[L], zw[L]) {
			t.Fatalf("after partial reconfig lane %d: compiled %08x != walker %08x", L, zc[L], zw[L])
		}
		if !equalWords(zc[L], zs) {
			t.Fatalf("after partial reconfig lane %d: compiled %08x != scalar full-image %08x", L, zc[L], zs)
		}
	}
}

// TestValidateRejectsOversizedFabric pins the capacity check that backs
// the 16-bit instruction operands.
func TestValidateRejectsOversizedFabric(t *testing.T) {
	desc := &bitstream.Description{NumNets: MaxNets + 1}
	if err := validate(desc); err == nil {
		t.Fatal("validate accepted a description beyond fabric capacity")
	}
}

// TestTranspose64 checks the unrolled bit-matrix transpose against a
// naive per-bit reference on random matrices.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 16; trial++ {
		var m, want [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		if trial == 0 {
			m = [64]uint64{} // all zero
		}
		if trial == 1 {
			for i := range m {
				m[i] = ^uint64(0)
			}
		}
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				if m[c]>>uint(r)&1 == 1 {
					want[r] |= 1 << uint(c)
				}
			}
		}
		got := m
		transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose64 diverges from reference", trial)
		}
	}
}

// TestCoalesceCopies checks that the clock-edge block-copy merge is an
// exact semantic rewrite: for random move lists, executing the coalesced
// program over a random register file must equal executing the original
// single-slot list in order.
func TestCoalesceCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	runSingles := func(order []regCopy, regs []uint64) {
		for _, cp := range order {
			regs[cp.dst] = regs[cp.src]
		}
	}
	runCoalesced := func(order []regCopy, regs []uint64) {
		for _, cp := range order {
			if cp.n == 1 {
				regs[cp.dst] = regs[cp.src]
			} else {
				copy(regs[cp.dst:cp.dst+cp.n], regs[cp.src:cp.src+cp.n])
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		var order []regCopy
		for len(order) < 24 {
			switch rng.Intn(3) {
			case 0: // random single
				order = append(order, regCopy{dst: uint32(rng.Intn(96)), src: uint32(rng.Intn(96))})
			case 1: // ascending run, possibly overlapping
				d, s, n := rng.Intn(64), rng.Intn(64), 2+rng.Intn(8)
				for k := 0; k < n; k++ {
					order = append(order, regCopy{dst: uint32(d + k), src: uint32(s + k)})
				}
			default: // descending run, possibly overlapping
				d, s, n := 24+rng.Intn(64), 24+rng.Intn(64), 2+rng.Intn(8)
				for k := 0; k < n; k++ {
					order = append(order, regCopy{dst: uint32(d - k), src: uint32(s - k)})
				}
			}
		}
		base := make([]uint64, 128)
		for i := range base {
			base[i] = rng.Uint64()
		}
		want := append([]uint64(nil), base...)
		runSingles(order, want)
		got := append([]uint64(nil), base...)
		runCoalesced(coalesceCopies(append([]regCopy(nil), order...)), got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: slot %d: coalesced %016x != sequential %016x", trial, i, got[i], want[i])
			}
		}
	}
}

// FuzzProgramDifferential is the compiled evaluator's oracle: for fuzzed
// lane counts in 1..MaxLanes (all three word widths) and per-lane
// LUT/BRAM patches, the compiled program and the description walker
// must emit identical keystreams over identical register files.
func FuzzProgramDifferential(f *testing.F) {
	fx := newBatchFixture(f)
	f.Add(uint8(0), int64(1), uint64(0xEA024714AD5C4D84))
	f.Add(uint8(5), int64(42), uint64(0xDF1F9B251C0BF45F))
	f.Add(uint8(63), int64(1234), uint64(0x0123456789ABCDEF))
	f.Add(uint8(99), int64(77), uint64(0x243F6A8885A308D3)) // 100 lanes: partial 2-word
	f.Add(uint8(200), int64(9), uint64(0x13198A2E03707344)) // 201 lanes: partial 4-word
	f.Add(uint8(255), int64(3), uint64(0xA4093822299F31D0)) // 256 lanes: full width
	f.Fuzz(func(t *testing.T, laneByte uint8, patchSeed int64, ivSeed uint64) {
		lanes := 1 + int(laneByte)%MaxLanes
		rng := rand.New(rand.NewSource(patchSeed))
		iv := snow3g.IV{uint32(ivSeed), uint32(ivSeed >> 32), uint32(ivSeed) ^ 0xA5A5A5A5, uint32(ivSeed>>32) ^ 0x5A5A5A5A}
		patches := make([]bitstream.PatchSet, lanes)
		for L := 0; L < lanes; L++ {
			switch rng.Intn(3) {
			case 0:
			case 1:
				patches[L] = fx.diff(t, fx.withLUT(t, rng.Intn(len(fx.desc.LUTs)), boolfn.TT(rng.Uint64())))
			default:
				bram := rng.Intn(len(fx.desc.BRAMs))
				entry := rng.Intn(1 << len(fx.desc.BRAMs[bram].Addr))
				patches[L] = fx.diff(t, fx.withBRAMWord(t, bram, entry, rng.Uint64()))
			}
		}
		mk := func(walk bool) [][]uint32 {
			dev := New([bitstream.KeySize]byte{})
			b, err := dev.LoadPatched(fx.img, patches)
			if err != nil {
				t.Fatal(err)
			}
			b.SetWalker(walk)
			return hdl.GenerateKeystreamBatch(b, iv, 3)
		}
		zc, zw := mk(false), mk(true)
		for L := 0; L < lanes; L++ {
			if !equalWords(zc[L], zw[L]) {
				t.Fatalf("lane %d/%d: compiled %08x != walker %08x", L, lanes, zc[L], zw[L])
			}
		}
	})
}

// TestConcurrentBatchesOverOneDescription pins the concurrency contract
// documented on Batch: one Batch is single-goroutine, but distinct
// Batches over one loaded configuration share only immutable data — the
// compiled Program, the Description and the base BRAM tables — so
// independent goroutines may sweep concurrently, including at mixed
// word widths (for W>1 each state widens its own row copies). Run under
// -race (the tier-1 suite always is), any shared scratch would be
// reported.
func TestConcurrentBatchesOverOneDescription(t *testing.T) {
	fx := newBatchFixture(t)
	dev := New([bitstream.KeySize]byte{})
	if err := dev.Load(fx.img); err != nil {
		t.Fatal(err)
	}
	widths := []int{8, 64, 100, MaxLanes}
	workers := len(widths)
	results := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		b, err := dev.BatchOf(make([]bitstream.PatchSet, widths[w]))
		if err != nil {
			t.Fatal(err)
		}
		if w%2 == 1 {
			b.SetWalker(true) // both evaluators must honor the contract
		}
		wg.Add(1)
		go func(w int, b *Batch) {
			defer wg.Done()
			results[w] = hdl.GenerateKeystreamBatch(b, testIV, 4)[0]
		}(w, b)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !equalWords(results[w], results[0]) {
			t.Fatalf("worker %d diverges: %08x != %08x", w, results[w], results[0])
		}
	}
}
