package device

import (
	"math/rand"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/hdl"
	"snowbma/internal/snow3g"
)

// FuzzClockBatchDifferential is the batch evaluator's differential
// oracle: for a fuzzed lane count (1..MaxLanes, covering all three word
// widths), IV and per-lane random LUT / BRAM patches, every lane
// extracted from ClockBatch must match a scalar device loaded with that
// lane's full image. The seed corpus pins lane counts 1, 2, 64, 65, 128
// and 256.
func FuzzClockBatchDifferential(f *testing.F) {
	fx := newBatchFixture(f)
	f.Add(uint8(1), int64(1), uint64(0xEA024714AD5C4D84))
	f.Add(uint8(2), int64(7), uint64(0xDF1F9B251C0BF45F))
	f.Add(uint8(64), int64(1234), uint64(0x0123456789ABCDEF))
	f.Add(uint8(65), int64(55), uint64(0x082EFA98EC4E6C89))  // first two-word count
	f.Add(uint8(128), int64(21), uint64(0x452821E638D01377)) // full two-word
	f.Add(uint8(255), int64(12), uint64(0xBE5466CF34E90C6C)) // 256 lanes: full four-word
	f.Fuzz(func(t *testing.T, laneByte uint8, patchSeed int64, ivSeed uint64) {
		lanes := 1 + int(laneByte)%MaxLanes
		rng := rand.New(rand.NewSource(patchSeed))
		iv := snow3g.IV{uint32(ivSeed), uint32(ivSeed >> 32), uint32(ivSeed) ^ 0xA5A5A5A5, uint32(ivSeed>>32) ^ 0x5A5A5A5A}
		patches := make([]bitstream.PatchSet, lanes)
		images := make([][]byte, lanes)
		for L := 0; L < lanes; L++ {
			switch rng.Intn(3) {
			case 0:
				images[L] = fx.img
			case 1:
				images[L] = fx.withLUT(t, rng.Intn(len(fx.desc.LUTs)), boolfn.TT(rng.Uint64()))
			default:
				bram := rng.Intn(len(fx.desc.BRAMs))
				entry := rng.Intn(1 << len(fx.desc.BRAMs[bram].Addr))
				images[L] = fx.withBRAMWord(t, bram, entry, rng.Uint64())
			}
			patches[L] = fx.diff(t, images[L])
		}
		dev := New([bitstream.KeySize]byte{})
		batch, err := dev.LoadPatched(fx.img, patches)
		if err != nil {
			t.Fatal(err)
		}
		const n = 3
		got := hdl.GenerateKeystreamBatch(batch, iv, n)
		for L := 0; L < lanes; L++ {
			ref := New([bitstream.KeySize]byte{})
			if err := ref.Load(images[L]); err != nil {
				t.Fatal(err)
			}
			want := hdl.GenerateKeystream(ref, iv, n)
			if !equalWords(got[L], want) {
				t.Fatalf("lane %d/%d diverges: batch %08x != scalar %08x", L, lanes, got[L], want)
			}
		}
	})
}
