package device

import (
	"sort"
	"sync"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/obs"
)

// The walker evaluators re-interpret the Description on every settle:
// each LUT re-reduces a 2^k mux tree, each BRAM re-gathers per-lane
// addresses bit by bit. compile flattens a loaded configuration once
// into a Program — a topologically-ordered flat instruction slice over
// dense register slots (slot = net id; synthesis temporaries follow) —
// and both the scalar FPGA and the bitsliced Batch then run the same
// bytecode over []uint64 words. LUT truth tables are synthesized into
// short Shannon-decomposition micro-programs (a 3-input routing mux
// becomes one fused instruction instead of a 7-mux tree), parity cones
// become a single XOR-chain instruction, and dense tables fall back to
// the transposed-rows mux reduce. Block RAMs are batched into groups
// that share one 64x64 address transpose and pack every member's
// output words into one shared scatter transpose, so a group costs two
// transposes per settle however many RAMs it holds. Inputs tied to
// the constant nets 0/1 are folded
// out of the truth table at compile time, and constant ROMs (the
// walker's `primed` fast path) become a prologue that runs once per
// state instead of a per-settle branch.
//
// Patching never recompiles: a truth-table change rewrites only the
// affected LUT's instruction site to the generic reduce form over
// per-state rows, and a BRAM change swaps the per-(BRAM,lane) table
// pointer and re-runs the constant-ROM prologue. The Program itself is
// immutable and shared; every mutable operand table lives in progState.

// Opcodes of the compiled program. Two-input fused forms cover every
// Shannon-decomposition special case so a typical routing LUT costs one
// or two instructions.
const (
	opNop    = iota // patched-out slot
	opConst0        // dst = 0
	opConst1        // dst = ^0
	opCopy          // dst = a
	opNot           // dst = ^a
	opAnd           // dst = a & b
	opOr            // dst = a | b
	opXor           // dst = a ^ b
	opAndN          // dst = a &^ b
	opOrN           // dst = a | ^b
	opNand          // dst = ^(a & b)
	opNor           // dst = ^(a | b)
	opXnor          // dst = ^(a ^ b)
	opMux           // dst = c ? a : b
	opMuxNA         // dst = c ? ^a : b
	opMuxNB         // dst = c ? a : ^b
	opMuxNAB        // dst = ^(c ? a : b)
	opXorMuxA       // dst = c ? a.lo^a.hi : b (peephole-fused xor + mux)
	opXorMuxB       // dst = c ? b : a.lo^a.hi
	opXnorMuxA      // dst = c ? ^(a.lo^a.hi) : b
	opXnorMuxB      // dst = c ? b : ^(a.lo^a.hi)
	opXorK          // dst = (^)args[a : a+n] xor-chain, c=1 complements
	opReduce        // dst = mux-reduce of rows[lut=a][c:c+1<<n] by LUT inputs
	opBRAM          // evaluate bramGroups[a]
	opAdder         // ripple-evaluate desc.Adders[a]
)

// insn is one compiled instruction. Operand meaning depends on op; dst
// and the register operands b/c index the state's regs slice, and a
// does too except where the opcode table above notes an index meaning
// (args offset, LUT/group/adder index). Register operands are uint16 —
// the fabric capacity check in validate guarantees every slot fits —
// which keeps the instruction at 12 bytes, and the settle loop streams
// 40% less memory for it.
type insn struct {
	a   uint32 // register, or args offset / LUT / group / adder index
	dst uint16
	b   uint16
	c   uint16
	op  uint8
	n   uint8 // k for opReduce, chain length for opXorK
}

// lutSite locates the instruction range a LUT compiled to, so a
// truth-table patch can rewrite exactly those slots.
type lutSite struct {
	off int32
	n   int32
}

// packWordBits is the capacity of the packed per-lane address word a
// BRAM group shares: one 64-bit transpose row per address bit. It is a
// property of the 64x64 transpose, not of the lane capacity — a group
// packs at most 64 address bits however many lanes the state runs.
const packWordBits = 64

// bramMember is one block RAM inside a bramGroup: where its address
// bits sit in the packed per-lane address word and where its outputs
// scatter to.
type bramMember struct {
	bram    int      // index into desc.BRAMs and the state tab array
	addr    []uint32 // address nets, LSB first
	addrOff uint     // bit offset within the packed per-lane address
	mask    uint64   // (1 << len(addr)) - 1
	outs    []uint32 // output nets, LSB first
	outMask uint64   // keeps only len(outs) bits of a table entry
}

// packEntry is one member's lookup parameters flattened into a pack:
// where its address sits in the packed per-lane address word and where
// its table bits land in the pack's output word.
type packEntry struct {
	bram    int
	addrOff uint
	shift   uint
	mask    uint64
	outMask uint64
}

// bramPack packs up to 64 output bits of consecutive members into one
// per-lane word, so a single scatter transpose serves them all — the
// eight 8-bit S-box RAMs of the design share one transpose this way.
type bramPack struct {
	entries []packEntry
	dsts    []uint32 // transposed row index -> destination register
}

// bramGroup is a run of consecutive, address-independent block RAMs
// evaluated together: one transpose yields every member's per-lane
// address, then each pack does its lookups and one scatter transpose.
type bramGroup struct {
	members []bramMember
	packs   []bramPack
}

// constROM is an address-less BRAM: its outputs are configuration
// constants, computed by the prologue instead of on every settle.
type constROM struct {
	bram int
	outs []uint32
}

// CompileStats summarizes one Description->Program compilation; the
// attack report surfaces them next to the batch-sweep counters.
type CompileStats struct {
	Insns        int // settle-body instructions
	Temps        int // synthesis temporaries beyond the net slots
	ShannonLUTs  int // LUTs compiled to fused-op micro-programs
	ParityLUTs   int // LUT outputs compiled to one XOR chain
	ReduceLUTs   int // LUTs kept as transposed-rows mux reduces
	FoldedInputs int // LUT inputs tied to const-0/const-1 and folded out
	BRAMGroups   int // shared-transpose BRAM groups
	ConstROMs    int // address-less BRAMs moved to the prologue
}

// Program is an immutable compiled form of one loaded configuration.
// It is shared by every evaluator state built over the same base; all
// patchable data lives in progState.
type Program struct {
	desc   *bitstream.Description
	baseTT []boolfn.TT // truth tables the instruction stream encodes
	insns  []insn
	args   []uint32 // operand pool for opXorK
	sites  []lutSite
	// baseRows holds transposed truth-table rows for LUTs whose
	// compiled form is opReduce (nil for Shannon-form LUTs); states
	// share them copy-on-write.
	baseRows [][]uint64
	groups   []bramGroup
	consts   []constROM
	// ffQ/ffD are the flip-flop nets flattened out of desc.FFs, so the
	// per-settle inject and per-clock latch loops stream one dense
	// uint32 array instead of striding through the record structs.
	ffQ, ffD []uint32
	// ffSafe reports that no evaluation item, input pin or constant net
	// writes a flip-flop Q net. Then Q registers survive across settles
	// and a clock edge is just the hazard-ordered ffCopies list
	// (regs[Q] = regs[D]), eliminating both the per-settle inject and
	// the per-clock latch loop. When the check fails (adversarial
	// descriptions), the classic ff-array inject/latch path runs.
	ffSafe   bool
	ffCopies []regCopy
	nregs    uint32
	stats    CompileStats
}

// regCopy is one ordered move of the fused clock edge: n register
// slots starting at src copied to the slots starting at dst. The
// planner coalesces runs of adjacent single moves (an LFSR shift is
// hundreds of FFs with consecutive slot numbers) into block copies
// whenever the two ranges are disjoint, so the seed design's 640-FF
// edge executes as three copy() calls.
type regCopy struct {
	dst, src, n uint32
}

// Stats returns the compile statistics.
func (p *Program) Stats() CompileStats { return p.stats }

// progState is the mutable half of a compiled evaluator: register file,
// flip-flop state, the state-private instruction copy (so patches
// rewrite operand tables without touching the shared Program), resolved
// per-(BRAM,lane) tables and the scratch buffers. A progState, like the
// Batch wrapping it, is not safe for concurrent use; distinct states
// over one Program are independent.
//
// Widths beyond 64 lanes use multi-word register slots: slot s holds
// words regs[s*words : (s+1)*words], word w carrying lanes
// [64w, 64w+63]. LUT rows are word-planar (row m word w at
// rows[w*64+m]), flip-flop state interleaves (ff[i*words+w]), and the
// per-(BRAM,lane) tables are indexed by global lane number with the
// fixed MaxLanes stride. words is 1, 2 or 4 (LaneWords), chosen from
// lanes at construction and immutable afterwards.
type progState struct {
	prog  *Program
	lanes int
	words int
	regs  []uint64
	ff    []uint64
	insns []insn
	// runs caches the instruction stream grouped into maximal
	// consecutive same-opcode spans; settle dispatches once per run
	// instead of once per instruction (and opNop runs vanish wholesale).
	// Site patches invalidate it (runsDirty) and the next settle
	// rebuilds.
	runs      []insnRun
	runsDirty bool
	// rows[i] is LUT i's 64 transposed truth-table rows per word, stored
	// word-planar: row m of word w at rows[i][w*64+m], so each word's
	// mux reduce streams a contiguous 64-row block. Entries start as
	// shared references into prog.baseRows (or nil for Shannon-form
	// LUTs) and become private on first patch; owned[i] reports that.
	// Multi-word states widen every shared entry upfront.
	rows        [][]uint64
	owned       []bool
	sitePatched []bool
	// reduceMask[i] is the set of words of LUT i that contain a patched
	// lane (bit w = word w), allocated on the first multi-word site
	// demotion. Multi-word reduce fixups re-evaluate only these words;
	// the native instructions cover the rest. Single-word states never
	// use it (their site rewrite replaces the native instructions).
	reduceMask []uint8
	// rowsFill[i] is the set of word blocks of LUT i's privately-owned
	// rows holding real (base or patched) content; the rest are sparse
	// zeros that only materializeRows/fillRowBlock may initialize.
	// Multi-word states only — single-word rows are always built full.
	rowsFill []uint8
	// fixupsDirty marks that the set of demoted sites grew since the
	// instruction stream was last rebuilt with reduce fixups (multi-word
	// states only).
	fixupsDirty bool
	// tabs[b*MaxLanes+L] is the content table lane L of BRAM b reads;
	// tabUniform[b] reports that all lanes still share one table, which
	// lets the group lookup loop hoist the table header out of the
	// per-lane loop.
	tabs       [][]uint64
	tabUniform []bool
	// Fused clock edge (ffSafe programs only): once the first settle has
	// injected the ff array, Q registers stay live in regs (ffInline) and
	// a clock edge merely defers the ordered ffCopies to the next settle
	// (pendingLatch). materializeFF folds the state back into ff before
	// anything reads or overwrites the array directly.
	ffInline     bool
	pendingLatch bool
	// scratch/scratch2 serve one 64-lane block at a time (the transpose
	// unit); multi-word paths sweep them per block. rscratch holds the
	// interleaved mux-reduce tree for all words at once.
	scratch  [LaneWordBits]uint64
	scratch2 [LaneWordBits]uint64
	rscratch [32 * MaxLaneWords]uint64
}

// insnRun is one maximal span of consecutive same-opcode instructions
// [lo, hi) in a state's instruction stream.
type insnRun struct {
	lo, hi int32
	op     uint8
}

// buildRuns regroups the instruction stream into opcode runs, dropping
// opNop spans (patched-out slots) entirely.
func (st *progState) buildRuns() {
	st.runs = st.runs[:0]
	insns := st.insns
	for i := 0; i < len(insns); {
		op := insns[i].op
		j := i + 1
		for j < len(insns) && insns[j].op == op {
			j++
		}
		if op != opNop {
			st.runs = append(st.runs, insnRun{lo: int32(i), hi: int32(j), op: op})
		}
		i = j
	}
	st.runsDirty = false
}

// ---------------------------------------------------------------------
// Compilation

type compiler struct {
	desc  *bitstream.Description
	tts   []boolfn.TT
	insns []insn
	args  []uint32
	sites []lutSite
	rows  [][]uint64
	nets  uint32 // register slots below the temp range
	temps int    // high-water temp count across sites
	stats CompileStats
	// plan and memo are the synthesis scratch maps, allocated once and
	// shared across every site of this compilation: plan entries depend
	// only on the (folded) truth table, so they carry between sites,
	// while memo maps functions to registers and is cleared per site.
	plan map[boolfn.TT]planEntry
	memo map[boolfn.TT]uint32
}

// compile flattens a decoded configuration into a Program. The
// description must already have passed validate.
func compile(desc *bitstream.Description, tts []boolfn.TT, tel *obs.Telemetry) *Program {
	span := tel.StartSpan("device.compile",
		obs.KV("luts", len(desc.LUTs)), obs.KV("eval_items", len(desc.Eval)))
	defer span.End()
	c := &compiler{
		desc:  desc,
		tts:   tts,
		sites: make([]lutSite, len(desc.LUTs)),
		rows:  make([][]uint64, len(desc.LUTs)),
		nets:  max(desc.NumNets, 2),
		plan:  map[boolfn.TT]planEntry{},
		memo:  map[boolfn.TT]uint32{},
	}
	var groups []bramGroup
	var consts []constROM
	openIdx := -1     // group accepting the current BRAM run
	var openBits uint // address bits packed so far
	var openOuts map[uint32]bool
	closeGroup := func() {
		if openIdx >= 0 {
			groups[openIdx].packs = packMembers(groups[openIdx].members)
			openIdx = -1
		}
	}
	for _, item := range desc.Eval {
		switch item.Kind {
		case bitstream.EvalLUT:
			closeGroup()
			c.compileLUT(int(item.Index))
		case bitstream.EvalBRAM:
			rec := &desc.BRAMs[item.Index]
			if len(rec.Addr) == 0 {
				// Constant ROM: outputs never change after the prologue.
				// It stays transparent to grouping — it writes no nets a
				// later member could depend on during the run.
				consts = append(consts, constROM{bram: int(item.Index), outs: rec.Out})
				continue
			}
			m := bramMember{
				bram:    int(item.Index),
				addr:    rec.Addr,
				mask:    1<<uint(len(rec.Addr)) - 1,
				outs:    rec.Out,
				outMask: outMaskFor(len(rec.Out)),
			}
			if openIdx >= 0 && openBits+uint(len(rec.Addr)) <= packWordBits && independent(rec.Addr, openOuts) {
				m.addrOff = openBits
				openBits += uint(len(rec.Addr))
				groups[openIdx].members = append(groups[openIdx].members, m)
			} else {
				closeGroup()
				groups = append(groups, bramGroup{members: []bramMember{m}})
				openIdx = len(groups) - 1
				openBits = uint(len(rec.Addr))
				openOuts = map[uint32]bool{}
				c.insns = append(c.insns, insn{op: opBRAM, a: uint32(openIdx)})
			}
			for _, out := range rec.Out {
				openOuts[out] = true
			}
		case bitstream.EvalAdder:
			closeGroup()
			c.insns = append(c.insns, insn{op: opAdder, a: item.Index})
		}
	}
	closeGroup()
	fuseMuxPairs(c)
	c.stats.Insns = len(c.insns)
	c.stats.Temps = c.temps
	c.stats.BRAMGroups = len(groups)
	c.stats.ConstROMs = len(consts)
	ffQ := make([]uint32, len(desc.FFs))
	ffD := make([]uint32, len(desc.FFs))
	for i, ff := range desc.FFs {
		ffQ[i], ffD[i] = ff.Q, ff.D
	}
	nregs := c.nets + uint32(c.temps)
	ffSafe, ffCopies, ffTemps := planClockEdge(desc, nregs)
	nregs += uint32(ffTemps)
	p := &Program{
		desc:     desc,
		ffQ:      ffQ,
		ffD:      ffD,
		ffSafe:   ffSafe,
		ffCopies: ffCopies,
		baseTT:   append([]boolfn.TT(nil), tts...),
		insns:    c.insns,
		args:     c.args,
		sites:    c.sites,
		baseRows: c.rows,
		groups:   groups,
		consts:   consts,
		nregs:    nregs,
		stats:    c.stats,
	}
	span.SetAttr("insns", p.stats.Insns)
	span.SetAttr("reduce_luts", p.stats.ReduceLUTs)
	tel.Counter("device.compiles").Inc()
	tel.Counter("device.compile_insns").Add(int64(p.stats.Insns))
	tel.Counter("device.compile_folded_inputs").Add(int64(p.stats.FoldedInputs))
	tel.Counter("device.compile_reduce_luts").Add(int64(p.stats.ReduceLUTs))
	return p
}

// fuseMuxPairs rewrites each xor/xnor whose single-use temporary feeds
// the immediately following plain mux within the same LUT site into one
// fused instruction (the temporary pair packs into the 32-bit a field),
// then compacts the instruction list and remaps the site table. The
// SNOW 3G fabric synthesizes well over a hundred such pairs, and each
// fusion drops a register store, a load and a dispatch from the settle
// loop. Patching is unaffected: a reconfigured site is nopped wholesale
// regardless of how its slots were fused.
func fuseMuxPairs(c *compiler) {
	// Temporary slots are reused site to site, so "single use" is a
	// liveness question, not a count: t is fusable when, past the
	// consumer, the next instruction touching its slot overwrites it.
	readsT := func(ins *insn, t uint32) bool {
		switch ins.op {
		case opCopy, opNot:
			return ins.a == t
		case opAnd, opOr, opXor, opAndN, opOrN, opNand, opNor, opXnor:
			return ins.a == t || uint32(ins.b) == t
		case opMux, opMuxNA, opMuxNB, opMuxNAB:
			return ins.a == t || uint32(ins.b) == t || uint32(ins.c) == t
		case opXorMuxA, opXorMuxB, opXnorMuxA, opXnorMuxB:
			return ins.a&0xffff == t || ins.a>>16 == t || uint32(ins.b) == t || uint32(ins.c) == t
		}
		return false
	}
	writesT := func(ins *insn, t uint32) bool {
		switch ins.op {
		case opNop, opBRAM, opAdder:
			return false
		}
		return uint32(ins.dst) == t
	}
	deadAfter := func(from int32, t uint32) bool {
		for j := from; j < int32(len(c.insns)); j++ {
			if readsT(&c.insns[j], t) {
				return false
			}
			if writesT(&c.insns[j], t) {
				return true
			}
		}
		return true
	}
	dead := make([]bool, len(c.insns))
	removed := 0
	for s := range c.sites {
		site := c.sites[s]
		for i := site.off; i < site.off+site.n-1; i++ {
			p, q := &c.insns[i], &c.insns[i+1]
			if (p.op != opXor && p.op != opXnor) || q.op != opMux {
				continue
			}
			t := uint32(p.dst)
			if t < c.nets || uint32(q.c) == t || !deadAfter(i+2, t) {
				continue
			}
			onA, onB := q.a == t, uint32(q.b) == t
			if onA == onB {
				continue
			}
			switch {
			case p.op == opXor && onA:
				q.op = opXorMuxA
			case p.op == opXor:
				q.op = opXorMuxB
			case onA:
				q.op = opXnorMuxA
			default:
				q.op = opXnorMuxB
			}
			if onB {
				q.b = uint16(q.a)
			}
			q.a = p.a | uint32(p.b)<<16
			dead[i] = true
			removed++
		}
	}
	if removed == 0 {
		return
	}
	newIdx := make([]int32, len(c.insns)+1)
	out := c.insns[:0]
	for i, ins := range c.insns {
		newIdx[i] = int32(len(out))
		if !dead[i] {
			out = append(out, ins)
		}
	}
	newIdx[len(c.insns)] = int32(len(out))
	c.insns = out
	for s := range c.sites {
		site := &c.sites[s]
		end := newIdx[site.off+site.n]
		site.off = newIdx[site.off]
		site.n = end - site.off
	}
}

func outMaskFor(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

// independent reports that none of the address nets is driven by a BRAM
// already in the open group — the condition for hoisting this member's
// address gather to the group's shared transpose.
func independent(addr []uint32, groupOuts map[uint32]bool) bool {
	for _, a := range addr {
		if groupOuts[a] {
			return false
		}
	}
	return true
}

// packMembers greedily packs consecutive members into 64-bit output
// words: every member whose output bits still fit joins the open pack.
func packMembers(members []bramMember) []bramPack {
	var packs []bramPack
	for i := 0; i < len(members); {
		var p bramPack
		shift := 0
		for i < len(members) && (len(p.entries) == 0 || shift+len(members[i].outs) <= 64) {
			m := &members[i]
			p.entries = append(p.entries, packEntry{
				bram:    m.bram,
				addrOff: m.addrOff,
				shift:   uint(shift),
				mask:    m.mask,
				outMask: m.outMask,
			})
			p.dsts = append(p.dsts, m.outs...)
			shift += len(m.outs)
			i++
		}
		packs = append(packs, p)
	}
	return packs
}

// planClockEdge checks the ffSafe invariant — no LUT/BRAM/adder output,
// input port or constant net coincides with a flip-flop Q net, and Q
// nets are unique — and sequentializes the parallel clock-edge move set
// {regs[Q_i] <- regs[D_i]} into an order with no write-before-read
// hazard. Direct Q->D chains (shift registers) force ordering; pure FF
// cycles (ring counters) are broken with a temporary register starting
// at tempBase. Returns (safe, ordered copies, temporaries used).
func planClockEdge(desc *bitstream.Description, tempBase uint32) (bool, []regCopy, int) {
	qIdx := make(map[uint32]int, len(desc.FFs))
	for i, ff := range desc.FFs {
		if ff.Q < 2 {
			return false, nil, 0
		}
		if _, dup := qIdx[ff.Q]; dup {
			return false, nil, 0
		}
		qIdx[ff.Q] = i
	}
	isQ := func(net uint32) bool { _, ok := qIdx[net]; return ok }
	for _, p := range desc.Ports {
		if p.Dir == bitstream.In && isQ(p.Net) {
			return false, nil, 0
		}
	}
	for _, l := range desc.LUTs {
		if isQ(l.O6) || (l.O5 != bitstream.NoNet && isQ(l.O5)) {
			return false, nil, 0
		}
	}
	for _, b := range desc.BRAMs {
		for _, o := range b.Out {
			if isQ(o) {
				return false, nil, 0
			}
		}
	}
	for _, a := range desc.Adders {
		for _, s := range a.Sum {
			if isQ(s) {
				return false, nil, 0
			}
		}
	}
	copies := make([]regCopy, 0, len(desc.FFs))
	for _, ff := range desc.FFs {
		if ff.Q != ff.D {
			copies = append(copies, regCopy{dst: ff.Q, src: ff.D})
		}
	}
	readers := make(map[uint32]int, len(copies))
	byDst := make(map[uint32]int, len(copies))
	for i, cp := range copies {
		readers[cp.src]++
		byDst[cp.dst] = i
	}
	order := make([]regCopy, 0, len(copies))
	done := make([]bool, len(copies))
	remaining := len(copies)
	temps := 0
	var queue []int
	for i, cp := range copies {
		if readers[cp.dst] == 0 {
			queue = append(queue, i)
		}
	}
	for remaining > 0 {
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			cp := copies[i]
			order = append(order, cp)
			done[i] = true
			remaining--
			if readers[cp.src]--; readers[cp.src] == 0 {
				if j, ok := byDst[cp.src]; ok && !done[j] {
					queue = append(queue, j)
				}
			}
		}
		if remaining == 0 {
			break
		}
		// Every undone copy's destination is still read: a pure FF cycle.
		// Spill one destination to a temporary and redirect its readers.
		i := 0
		for done[i] {
			i++
		}
		t := tempBase + uint32(temps)
		temps++
		order = append(order, regCopy{dst: t, src: copies[i].dst})
		for j := range copies {
			if !done[j] && copies[j].src == copies[i].dst {
				copies[j].src = t
			}
		}
		readers[copies[i].dst] = 0
		queue = append(queue, i)
	}
	return true, coalesceCopies(order), temps
}

// coalesceCopies merges runs of single-slot moves whose destination and
// source step together (in either direction) into one block move. The
// merge is sound only when the block's source and destination ranges do
// not overlap: then a copy() of the whole range has exactly the effect
// of the run executed in its planned order. Overlapping or irregular
// moves stay as single-slot entries (n=1) in their original sequence.
func coalesceCopies(order []regCopy) []regCopy {
	out := order[:0]
	for i := 0; i < len(order); {
		j := i + 1
		var step uint32
		if j < len(order) {
			switch {
			case order[j].dst == order[i].dst+1 && order[j].src == order[i].src+1:
				step = 1
			case order[j].dst == order[i].dst-1 && order[j].src == order[i].src-1:
				step = ^uint32(0)
			}
		}
		if step != 0 {
			for j < len(order) && order[j].dst == order[j-1].dst+step && order[j].src == order[j-1].src+step {
				j++
			}
		}
		n := uint32(j - i)
		lo := order[i]
		if order[j-1].dst < lo.dst {
			lo = order[j-1]
		}
		if n > 1 && (lo.dst+n <= lo.src || lo.src+n <= lo.dst) {
			out = append(out, regCopy{dst: lo.dst, src: lo.src, n: n})
			i = j
			continue
		}
		for ; i < j; i++ {
			out = append(out, regCopy{dst: order[i].dst, src: order[i].src, n: 1})
		}
	}
	return out
}

// foldTT canonicalizes a raw k-input truth table into a full 6-variable
// table: don't-care bits above 2^k are forced to the low cofactor
// (matching walker semantics, which never index them), and inputs tied
// to the constant nets fold to their cofactor so synthesis never reads
// them. Returns the folded table and the number of folded inputs.
func foldTT(tt boolfn.TT, inputs []uint32, k int) (boolfn.TT, int) {
	for j := k; j < boolfn.MaxVars; j++ {
		tt = tt.Cofactor(j, false)
	}
	folded := 0
	for j := 0; j < k; j++ {
		switch inputs[j] {
		case 0:
			tt = tt.Cofactor(j, false)
			folded++
		case 1:
			tt = tt.Cofactor(j, true)
			folded++
		}
	}
	return tt, folded
}

// compileLUT synthesizes one LUT's outputs into fused instructions, or
// falls back to the reduce form when the micro-program would cost more
// than the mux tree.
func (c *compiler) compileLUT(idx int) {
	rec := &c.desc.LUTs[idx]
	tt := c.tts[idx]
	off := len(c.insns)
	argMark := len(c.args)
	clear(c.memo) // registers are site-local; the plan carries over
	s := &synthCtx{c: c, inputs: rec.Inputs, memo: c.memo, plan: c.plan}
	var reduceInsns []insn
	var folded int
	if rec.O5 != bitstream.NoNet {
		// Fractured LUT: a6 selects the half; each half is a function of
		// the first min(k,5) inputs. One memo across both halves shares
		// common cofactors.
		k := min(len(rec.Inputs), 5)
		lo, f0 := foldTT(tt.Cofactor(5, false), rec.Inputs, k)
		hi, f1 := foldTT(tt.Cofactor(5, true), rec.Inputs, k)
		folded = f0 + f1
		s.synthOutput(lo, rec.O5)
		s.synthOutput(hi, rec.O6)
		reduceInsns = []insn{
			{op: opReduce, n: uint8(k), dst: uint16(rec.O5), a: uint32(idx), c: 0},
			{op: opReduce, n: uint8(k), dst: uint16(rec.O6), a: uint32(idx), c: 32},
		}
	} else {
		k := len(rec.Inputs)
		f, n := foldTT(tt, rec.Inputs, k)
		folded = n
		s.synthOutput(f, rec.O6)
		reduceInsns = []insn{{op: opReduce, n: uint8(k), dst: uint16(rec.O6), a: uint32(idx)}}
	}
	shannon := 0.0
	for _, ins := range c.insns[off:] {
		shannon += insnCost(ins)
	}
	reduce := 0.0
	for _, ins := range reduceInsns {
		reduce += insnCost(ins)
	}
	if shannon > reduce {
		// The mux tree is cheaper (dense table): discard the synthesis
		// and keep the LUT in reduce form over shared base rows.
		c.insns = append(c.insns[:off], reduceInsns...)
		c.args = c.args[:argMark]
		c.rows[idx] = rowsFromTT(tt, ^uint64(0))
		c.stats.ReduceLUTs++
	} else {
		c.stats.ShannonLUTs++
		c.stats.FoldedInputs += folded
		if s.temp > c.temps {
			c.temps = s.temp
		}
	}
	c.sites[idx] = lutSite{off: int32(off), n: int32(len(c.insns) - off)}
}

// insnCost is the compile-time cost model (rough ns per settle on the
// reference machine) steering the Shannon-vs-reduce choice.
func insnCost(ins insn) float64 {
	switch ins.op {
	case opXorK:
		return 3 + 0.5*float64(ins.n)
	case opReduce:
		return 5 + 0.75*float64(uint(1)<<ins.n)
	default:
		return 2
	}
}

// rowsFromTT builds the 64 transposed truth-table rows with the given
// lane mask set on 1-bits.
func rowsFromTT(tt boolfn.TT, lanemask uint64) []uint64 {
	rows := make([]uint64, 64)
	for m := range rows {
		if tt>>uint(m)&1 == 1 {
			rows[m] = lanemask
		}
	}
	return rows
}

// synthCtx synthesizes one LUT site. Registers are uint32 slot indices:
// nets below c.nets, temporaries above. Synthesis plans first — an
// exhaustive memoized search over Shannon split variables, so a routing
// mux compiles to one instruction no matter where the mapper put its
// select input — then emits along the chosen decomposition with
// cofactor sharing.
type synthCtx struct {
	c      *compiler
	inputs []uint32
	memo   map[boolfn.TT]uint32
	plan   map[boolfn.TT]planEntry
	temp   int
}

type planEntry struct {
	cost int16
	v    int8 // chosen split variable
}

// planCost returns the minimal instruction count to synthesize f,
// choosing the Shannon split variable exhaustively. Emit-time cofactor
// sharing can only lower the real cost below this bound.
func (s *synthCtx) planCost(f boolfn.TT) int {
	if f == 0 || f == ^boolfn.TT(0) {
		return 0
	}
	sup := support(f)
	switch len(sup) {
	case 1:
		if f == boolfn.Var(sup[0]) {
			return 0
		}
		return 1 // complemented input
	case 2:
		return 1 // any 2-variable function is one fused instruction
	}
	if e, ok := s.plan[f]; ok {
		return int(e.cost)
	}
	planMu.RLock()
	e, cached := planCache[f]
	planMu.RUnlock()
	if cached {
		s.plan[f] = e
		return int(e.cost)
	}
	best, bestV := int(^uint(0)>>1), -1
	for _, v := range sup {
		f0, f1 := f.Cofactor(v, false), f.Cofactor(v, true)
		var c int
		switch {
		case f1 == ^f0:
			c = s.planCost(f0) + 1
		case f0 == 0, f0 == ^boolfn.TT(0):
			c = s.planCost(f1) + 1
		case f1 == 0, f1 == ^boolfn.TT(0):
			c = s.planCost(f0) + 1
		default:
			cf0, cf1 := s.planCost(f0), s.planCost(f1)
			// A complemented-input data leg fuses into the mux itself
			// (opMuxNA/NB/NAB), costing nothing.
			if isNegLeaf(f0) {
				cf0 = 0
			}
			if isNegLeaf(f1) {
				cf1 = 0
			}
			c = cf0 + cf1 + 1
		}
		if c < best {
			best, bestV = c, v
		}
	}
	e = planEntry{cost: int16(best), v: int8(bestV)}
	s.plan[f] = e
	planMu.Lock()
	if len(planCache) < planCacheMax {
		planCache[f] = e
	}
	planMu.Unlock()
	return best
}

// planCache memoizes the exhaustive Shannon-split search per (folded)
// truth table across compilations: a candidate sweep recompiles dozens
// of near-identical designs per attack, and the plan depends only on
// the function, never on routing. Bounded so adversarial streams of
// random designs cannot grow memory without limit.
var (
	planMu    sync.RWMutex
	planCache = map[boolfn.TT]planEntry{}
)

const planCacheMax = 1 << 16

func (s *synthCtx) alloc() uint32 {
	r := s.c.nets + uint32(s.temp)
	s.temp++
	return r
}

func (s *synthCtx) emit(op uint8, a, b, sel uint32) uint32 {
	dst := s.alloc()
	s.c.insns = append(s.c.insns, insn{op: op, dst: uint16(dst), a: a, b: uint16(b), c: uint16(sel)})
	return dst
}

// synthOutput synthesizes f into dst, retargeting the final instruction
// when possible so buffer copies only appear for pass-through LUTs.
func (s *synthCtx) synthOutput(f boolfn.TT, dst uint32) {
	switch f {
	case 0:
		s.c.insns = append(s.c.insns, insn{op: opConst0, dst: uint16(dst)})
		return
	case ^boolfn.TT(0):
		s.c.insns = append(s.c.insns, insn{op: opConst1, dst: uint16(dst)})
		return
	}
	if sup := support(f); len(sup) >= 3 {
		p := boolfn.TT(0)
		for _, j := range sup {
			p ^= boolfn.Var(j)
		}
		if f == p || f == ^p {
			argOff := uint32(len(s.c.args))
			for _, j := range sup {
				s.c.args = append(s.c.args, s.inputs[j])
			}
			comp := 0
			if f == ^p {
				comp = 1
			}
			s.c.insns = append(s.c.insns, insn{op: opXorK, n: uint8(len(sup)), dst: uint16(dst), a: argOff, c: uint16(comp)})
			s.c.stats.ParityLUTs++
			return
		}
	}
	r := s.synth(f)
	if n := len(s.c.insns); r >= s.c.nets && n > 0 && uint32(s.c.insns[n-1].dst) == r {
		// The value was produced by the instruction just emitted: write
		// it straight to the output net and keep the memo consistent.
		s.c.insns[n-1].dst = uint16(dst)
		for k, v := range s.memo {
			if v == r {
				s.memo[k] = dst
			}
		}
		return
	}
	s.c.insns = append(s.c.insns, insn{op: opCopy, dst: uint16(dst), a: r})
}

// synth returns a register holding f, emitting instructions as needed.
// Shannon decomposition on the planned split variable, with fused forms
// for the constant and complement cofactor cases and memoized sharing
// of repeated cofactors within the site.
func (s *synthCtx) synth(f boolfn.TT) uint32 {
	if f == 0 {
		return 0 // const-0 net
	}
	if f == ^boolfn.TT(0) {
		return 1 // const-1 net
	}
	if r, ok := s.memo[f]; ok {
		return r
	}
	sup := support(f)
	var r uint32
	if len(sup) <= 2 {
		r = s.emitSmall(f, sup)
		s.memo[f] = r
		return r
	}
	s.planCost(f)
	v := int(s.plan[f].v)
	in := s.inputs[v]
	switch f0, f1 := f.Cofactor(v, false), f.Cofactor(v, true); {
	case f1 == ^f0:
		r = s.emit(opXor, in, s.synth(f0), 0)
	case f0 == 0:
		r = s.emit(opAnd, in, s.synth(f1), 0)
	case f1 == 0:
		r = s.emit(opAndN, s.synth(f0), in, 0)
	case f0 == ^boolfn.TT(0):
		r = s.emit(opOrN, s.synth(f1), in, 0)
	case f1 == ^boolfn.TT(0):
		r = s.emit(opOr, in, s.synth(f0), 0)
	default:
		// Complemented single-input data legs fuse into the mux: the
		// not+mux pairs of the design's routing cones become one
		// instruction.
		in1, n1 := s.negLeaf(f1)
		in0, n0 := s.negLeaf(f0)
		switch {
		case n1 && n0:
			r = s.emit(opMuxNAB, in1, in0, in)
		case n1:
			r = s.emit(opMuxNA, in1, s.synth(f0), in)
		case n0:
			r = s.emit(opMuxNB, s.synth(f1), in0, in)
		default:
			r1 := s.synth(f1)
			r0 := s.synth(f0)
			r = s.emit(opMux, r1, r0, in)
		}
	}
	s.memo[f] = r
	return r
}

// negLeaf reports that f is the complement of a single input variable
// and returns that input's register, letting a mux absorb the
// complement instead of spending an opNot.
func (s *synthCtx) negLeaf(f boolfn.TT) (uint32, bool) {
	if !isNegLeaf(f) {
		return 0, false
	}
	return s.inputs[support(f)[0]], true
}

func isNegLeaf(f boolfn.TT) bool {
	sup := support(f)
	return len(sup) == 1 && f == ^boolfn.Var(sup[0])
}

// emitSmall produces any function of at most two live variables as a
// single instruction — the leaf level of the decomposition, where a
// 16-way table beats further splitting (no separate NOT for the
// complemented forms).
func (s *synthCtx) emitSmall(f boolfn.TT, sup []int) uint32 {
	if len(sup) == 1 {
		in := s.inputs[sup[0]]
		if f == boolfn.Var(sup[0]) {
			return in
		}
		return s.emit(opNot, in, 0, 0)
	}
	u, v := s.inputs[sup[0]], s.inputs[sup[1]]
	// p is f's truth table over (u,v): bit (uVal + 2*vVal).
	var p uint
	for m := uint(0); m < 4; m++ {
		fu := f.Cofactor(sup[0], m&1 == 1)
		if fu.Cofactor(sup[1], m&2 == 2) == ^boolfn.TT(0) {
			p |= 1 << m
		}
	}
	switch p {
	case 0b0110:
		return s.emit(opXor, u, v, 0)
	case 0b1001:
		return s.emit(opXnor, u, v, 0)
	case 0b1000:
		return s.emit(opAnd, u, v, 0)
	case 0b1110:
		return s.emit(opOr, u, v, 0)
	case 0b0001:
		return s.emit(opNor, u, v, 0)
	case 0b0111:
		return s.emit(opNand, u, v, 0)
	case 0b0010:
		return s.emit(opAndN, u, v, 0)
	case 0b0100:
		return s.emit(opAndN, v, u, 0)
	case 0b1011:
		return s.emit(opOrN, u, v, 0)
	case 0b1101:
		return s.emit(opOrN, v, u, 0)
	}
	panic("device: emitSmall: function is not 2-variable")
}

// support lists the live variables of f. Bit-parallel: variable j is
// live iff the two halves of the table along j differ, i.e. shifting
// the m_j=1 bits onto the m_j=0 positions changes the masked table.
func support(f boolfn.TT) []int {
	var sup []int
	for j := 0; j < boolfn.MaxVars; j++ {
		v := boolfn.Var(j)
		if (f>>(uint(1)<<j))&^v != f&^v {
			sup = append(sup, j)
		}
	}
	return sup
}

// ---------------------------------------------------------------------
// Evaluation state

// newProgState builds an evaluator state over p for the given truth
// tables and BRAM content. tts may differ from the compiled base (after
// a patch-only partial reconfiguration); differing LUTs are installed
// through the patch path. Flip-flops start at their init values and the
// constant-ROM prologue has run.
func newProgState(p *Program, tts []boolfn.TT, tabs [][]uint64, lanes int) *progState {
	W := LaneWords(lanes)
	st := &progState{
		prog:  p,
		lanes: lanes,
		words: W,
		// The register file is allocated at the full 2^16 slot space a
		// uint16 operand can address (times the words per slot), not at
		// nregs: the settle loop reslices it to that constant length,
		// which lets the compiler drop the bounds check on every operand
		// access. Slots past nregs are never touched, so the cost is
		// address space, not cache traffic.
		regs:        make([]uint64, (1<<16)*W),
		ff:          make([]uint64, len(p.desc.FFs)*W),
		insns:       append([]insn(nil), p.insns...),
		runsDirty:   true,
		rows:        append([][]uint64(nil), p.baseRows...),
		owned:       make([]bool, len(p.sites)),
		sitePatched: make([]bool, len(p.sites)),
		tabs:        make([][]uint64, len(p.desc.BRAMs)*MaxLanes),
		tabUniform:  make([]bool, len(p.desc.BRAMs)),
	}
	if W > 1 {
		st.rowsFill = make([]uint8, len(p.sites))
		// The shared baseRows were built single-word at compile time;
		// widen every reduce-form LUT's rows to the state's word count
		// (word-planar: one copy of the base rows per word block).
		for i, shared := range st.rows {
			if shared == nil {
				continue
			}
			rows := make([]uint64, 64*W)
			for w := 0; w < W; w++ {
				copy(rows[w*64:(w+1)*64], shared)
			}
			st.rows[i] = rows
			st.owned[i] = true
			st.rowsFill[i] = uint8(1<<W - 1)
		}
	}
	for b, tab := range tabs {
		st.tabUniform[b] = true
		for L := 0; L < MaxLanes; L++ {
			st.tabs[b*MaxLanes+L] = tab
		}
	}
	for i, ff := range p.desc.FFs {
		if ff.Init {
			for w := 0; w < W; w++ {
				st.ff[i*W+w] = ^uint64(0)
			}
		}
	}
	for i := range tts {
		if tts[i] != p.baseTT[i] {
			st.patchLUTAll(i, tts[i])
		}
	}
	st.prologue()
	return st
}

// reset returns the flip-flops to their configuration init values.
func (st *progState) reset() {
	W := st.words
	for i, ff := range st.prog.desc.FFs {
		var v uint64
		if ff.Init {
			v = ^uint64(0)
		}
		for w := 0; w < W; w++ {
			st.ff[i*W+w] = v
		}
	}
	st.ffInline = false
	st.pendingLatch = false
}

// clock advances one rising edge. On ffSafe programs the latch is
// deferred: the next settle replays it as the ordered copy list instead
// of streaming the ff array out and back in.
func (st *progState) clock() {
	st.settle()
	if st.prog.ffSafe {
		st.pendingLatch = true
	} else {
		st.latch()
	}
}

// materializeFF folds the inline flip-flop state back into the ff
// array. Required before anything reads or rewrites ff directly: reset
// via external copy (preserveFF), or handing the state to the walker.
func (st *progState) materializeFF() {
	if !st.ffInline {
		return
	}
	regs := st.regs
	W := st.words
	if st.pendingLatch {
		for i, d := range st.prog.ffD {
			di := int(d) * W
			for w := 0; w < W; w++ {
				st.ff[i*W+w] = regs[di+w]
			}
		}
		st.pendingLatch = false
	} else {
		for i, q := range st.prog.ffQ {
			qi := int(q) * W
			for w := 0; w < W; w++ {
				st.ff[i*W+w] = regs[qi+w]
			}
		}
	}
	st.ffInline = false
}

// ensureRows makes LUT i's rows private and initialized from the base
// truth table. Multi-word Shannon-form LUTs allocate sparse: the masked
// reduce fixups only ever read the word blocks listed in reduceMask, so
// base-filling the other words-per-slot-1 blocks would be pure memory
// traffic. fillRowBlock initializes a block on first touch and
// materializeRows completes the remainder if the walker needs them.
func (st *progState) ensureRows(i int) {
	if st.owned[i] {
		return
	}
	if shared := st.rows[i]; shared != nil {
		st.rows[i] = append([]uint64(nil), shared...)
		if st.rowsFill != nil {
			st.rowsFill[i] = uint8(1<<st.words - 1)
		}
	} else if st.words == 1 {
		st.rows[i] = rowsFromTTWide(st.prog.baseTT[i], 1)
	} else {
		st.rows[i] = make([]uint64, 64*st.words)
	}
	st.owned[i] = true
}

// fillRowBlock base-initializes word block w of LUT i's sparse rows.
// No-op for blocks already holding base or patched content.
func (st *progState) fillRowBlock(i, w int) {
	if st.rowsFill == nil || st.rowsFill[i]>>uint(w)&1 != 0 {
		return
	}
	block := st.rows[i][w*64 : w*64+64]
	tt := st.prog.baseTT[i]
	for m := 0; m < 64; m++ {
		if tt>>uint(m)&1 == 1 {
			block[m] = ^uint64(0)
		} else {
			block[m] = 0
		}
	}
	st.rowsFill[i] |= 1 << uint(w)
}

// materializeRows fills in the rows of every Shannon-form LUT — the
// ones the compiled path never needs — so the walker can evaluate the
// whole design through them, and completes the untouched word blocks of
// sparsely-allocated patched rows. Blocks holding patches are left
// untouched and keep their patches.
func (st *progState) materializeRows() {
	for i := range st.rows {
		if st.rows[i] == nil {
			st.rows[i] = rowsFromTTWide(st.prog.baseTT[i], st.words)
			st.owned[i] = true
			if st.rowsFill != nil {
				st.rowsFill[i] = uint8(1<<st.words - 1)
			}
		} else if st.rowsFill != nil && st.owned[i] {
			for w := 0; w < st.words; w++ {
				st.fillRowBlock(i, w)
			}
		}
	}
}

// rowsFromTTWide builds the word-planar transposed truth-table rows for
// a W-word state: every word block carries the same all-lanes mask of
// each truth-table bit.
func rowsFromTTWide(tt boolfn.TT, W int) []uint64 {
	rows := make([]uint64, 64*W)
	for m := 0; m < 64; m++ {
		if tt>>uint(m)&1 == 1 {
			rows[m] = ^uint64(0)
		}
	}
	for w := 1; w < W; w++ {
		copy(rows[w*64:(w+1)*64], rows[:64])
	}
	return rows
}

// ensureReduceSite switches LUT i's compiled form to read the state's
// rows — the patch path. Single-word states rewrite the instruction
// site in place to the generic reduce form. Multi-word states instead
// KEEP the native instructions — they still compute the base function
// for every word — and schedule a masked reduce fixup after the site
// that re-evaluates only the words holding a patched lane (reduceMask),
// so a lane patch costs one word of mux tree, not words-per-slot of
// them. Only state-private tables change; the shared Program is
// untouched.
func (st *progState) ensureReduceSite(i int) {
	if st.sitePatched[i] {
		return
	}
	st.ensureRows(i)
	if st.words > 1 {
		if st.reduceMask == nil {
			st.reduceMask = make([]uint8, len(st.prog.sites))
		}
		st.sitePatched[i] = true
		st.fixupsDirty = true
		st.runsDirty = true
		return
	}
	rec := &st.prog.desc.LUTs[i]
	site := st.prog.sites[i]
	for j := site.off; j < site.off+site.n; j++ {
		st.insns[j] = insn{op: opNop}
	}
	if rec.O5 != bitstream.NoNet {
		k := uint8(min(len(rec.Inputs), 5))
		st.insns[site.off] = insn{op: opReduce, n: k, dst: uint16(rec.O5), a: uint32(i), c: 0}
		st.insns[site.off+1] = insn{op: opReduce, n: k, dst: uint16(rec.O6), a: uint32(i), c: 32}
	} else {
		st.insns[site.off] = insn{op: opReduce, n: uint8(len(rec.Inputs)), dst: uint16(rec.O6), a: uint32(i)}
	}
	st.sitePatched[i] = true
	st.runsDirty = true
}

// rebuildFixups reconstructs the instruction stream from the shared
// Program with a masked reduce fixup (insn.b = 1) appended after every
// demoted site, in stream order. Runs once per settle at most — lane
// patches between settles only mark fixupsDirty — so a sweep that
// patches a hundred LUTs pays one O(insns) rebuild, not a hundred
// insertions.
func (st *progState) rebuildFixups() {
	p := st.prog
	type fix struct{ at, lut int32 }
	fixes := make([]fix, 0, 8)
	for i, patched := range st.sitePatched {
		// LUTs whose compiled form already is the full-width reduce read
		// the patched rows natively and need no fixup.
		if patched && p.baseRows[i] == nil {
			site := p.sites[i]
			fixes = append(fixes, fix{at: site.off + site.n, lut: int32(i)})
		}
	}
	sort.Slice(fixes, func(a, b int) bool { return fixes[a].at < fixes[b].at })
	out := make([]insn, 0, len(p.insns)+2*len(fixes))
	prev := int32(0)
	for _, f := range fixes {
		out = append(out, p.insns[prev:f.at]...)
		rec := &p.desc.LUTs[f.lut]
		if rec.O5 != bitstream.NoNet {
			k := uint8(min(len(rec.Inputs), 5))
			out = append(out,
				insn{op: opReduce, n: k, dst: uint16(rec.O5), a: uint32(f.lut), b: 1, c: 0},
				insn{op: opReduce, n: k, dst: uint16(rec.O6), a: uint32(f.lut), b: 1, c: 32})
		} else {
			out = append(out, insn{op: opReduce, n: uint8(len(rec.Inputs)), dst: uint16(rec.O6), a: uint32(f.lut), b: 1})
		}
		prev = f.at
	}
	out = append(out, p.insns[prev:]...)
	st.insns = out
	st.fixupsDirty = false
	st.runsDirty = true
}

// patchLUTAll installs a truth table for every lane of LUT i.
func (st *progState) patchLUTAll(i int, tt boolfn.TT) {
	st.ensureReduceSite(i)
	W := st.words
	rows := st.rows[i]
	for m := 0; m < 64; m++ {
		var v uint64
		if tt>>uint(m)&1 == 1 {
			v = ^uint64(0)
		}
		rows[m] = v
	}
	for w := 1; w < W; w++ {
		copy(rows[w*64:(w+1)*64], rows[:64])
	}
	if W > 1 {
		st.reduceMask[i] = uint8(1<<W - 1)
		st.rowsFill[i] = uint8(1<<W - 1)
	}
}

// patchLUTLane installs a truth table for one lane of LUT i.
func (st *progState) patchLUTLane(i, lane int, tt boolfn.TT) {
	st.ensureReduceSite(i)
	word := lane >> 6
	st.fillRowBlock(i, word)
	rows := st.rows[i]
	bit := uint64(1) << uint(lane&63)
	block := rows[word*64 : word*64+64]
	for m := 0; m < 64; m++ {
		if tt>>uint(m)&1 == 1 {
			block[m] |= bit
		} else {
			block[m] &^= bit
		}
	}
	if st.words > 1 {
		st.reduceMask[i] |= 1 << uint(word)
	}
}

// setTabLane points one lane of BRAM b at a patched content table. The
// caller re-runs the prologue after the last patch.
func (st *progState) setTabLane(b, lane int, tab []uint64) {
	st.tabs[b*MaxLanes+lane] = tab
	st.tabUniform[b] = false
}

// setTabAll repoints every lane of BRAM b.
func (st *progState) setTabAll(b int, tab []uint64) {
	for L := 0; L < MaxLanes; L++ {
		st.tabs[b*MaxLanes+L] = tab
	}
	st.tabUniform[b] = true
}

// prologue computes the constant-ROM output nets — once per state (and
// again after BRAM patches), replacing the walker's per-settle `primed`
// check. Lane bits beyond lanes carry the lane-0 value, which is
// harmless under the lane-locality invariant.
func (st *progState) prologue() {
	W := st.words
	for _, c := range st.prog.consts {
		base := c.bram * MaxLanes
		masks := st.scratch2[:len(c.outs)]
		for w := 0; w < W; w++ {
			laneBase := base + w*LaneWordBits
			bl := st.lanes - w*LaneWordBits
			if bl > LaneWordBits {
				bl = LaneWordBits
			}
			w0 := st.tabs[laneBase][0]
			for bi := range masks {
				masks[bi] = -(w0 >> uint(bi) & 1)
			}
			for L := 1; L < bl; L++ {
				wv := st.tabs[laneBase+L][0]
				if wv == w0 {
					continue
				}
				bit := uint64(1) << uint(L)
				for bi := range masks {
					if wv>>uint(bi)&1 == 1 {
						masks[bi] |= bit
					} else {
						masks[bi] &^= bit
					}
				}
			}
			for bi, out := range c.outs {
				st.regs[int(out)*W+w] = masks[bi]
			}
		}
	}
}

// latch captures every flip-flop's D input — the rising clock edge.
func (st *progState) latch() {
	regs := st.regs
	ff := st.ff
	if st.words == 1 {
		for i, d := range st.prog.ffD {
			ff[i] = regs[d]
		}
		return
	}
	W := st.words
	for i, d := range st.prog.ffD {
		di := int(d) * W
		for w := 0; w < W; w++ {
			ff[i*W+w] = regs[di+w]
		}
	}
}

// settle evaluates the combinational fabric: constants, flip-flop
// injection, then the compiled instruction stream in topological order.
// Dispatch is two-level: by register-slot width (one hand-specialized
// body per word count, so the 64-lane path pays nothing for the wider
// ones) and then per opcode *run* — the stream grouped into maximal
// same-opcode spans — so the unpredictable indirect dispatch branch
// fires once per span instead of once per instruction.
func (st *progState) settle() {
	if st.fixupsDirty {
		st.rebuildFixups()
	}
	if st.runsDirty {
		st.buildRuns()
	}
	switch st.words {
	case 1:
		st.settle1()
	case 2:
		st.settle2()
	default:
		st.settle4()
	}
}

// preambleWide is the multi-word settle preamble: constants, then
// flip-flop injection or the deferred clock-edge copy list, with every
// slot move scaled to words-per-slot (contiguous slot ranges stay
// contiguous word ranges, so coalesced block copies stay one copy()).
func (st *progState) preambleWide() {
	p := st.prog
	W := st.words
	regs := st.regs
	for w := 0; w < W; w++ {
		regs[w] = 0
		regs[W+w] = ^uint64(0)
	}
	switch {
	case !p.ffSafe || !st.ffInline:
		ff := st.ff
		for i, q := range p.ffQ {
			qi := int(q) * W
			for w := 0; w < W; w++ {
				regs[qi+w] = ff[i*W+w]
			}
		}
		st.ffInline = p.ffSafe
	case st.pendingLatch:
		for _, cp := range p.ffCopies {
			d, s := int(cp.dst)*W, int(cp.src)*W
			if cp.n == 1 {
				for w := 0; w < W; w++ {
					regs[d+w] = regs[s+w]
				}
			} else {
				n := int(cp.n) * W
				copy(regs[d:d+n], regs[s:s+n])
			}
		}
		st.pendingLatch = false
	}
}

// settle1 is the single-word (≤64 lanes) evaluator body.
func (st *progState) settle1() {
	p := st.prog
	// Constant-length reslice: with len(regs) pinned to the full uint16
	// operand space, every regs[ins.dst]/[ins.b]/[ins.c] access below is
	// provably in bounds and compiles without a check.
	regs := st.regs[:1<<16:1<<16]
	regs[0] = 0
	regs[1] = ^uint64(0)
	switch {
	case !p.ffSafe || !st.ffInline:
		ff := st.ff
		for i, q := range p.ffQ {
			regs[q] = ff[i]
		}
		st.ffInline = p.ffSafe
	case st.pendingLatch:
		for _, cp := range p.ffCopies {
			if cp.n == 1 {
				regs[cp.dst] = regs[cp.src]
			} else {
				copy(regs[cp.dst:cp.dst+cp.n], regs[cp.src:cp.src+cp.n])
			}
		}
		st.pendingLatch = false
	}
	insns := st.insns
	for r := range st.runs {
		run := &st.runs[r]
		body := insns[run.lo:run.hi]
		switch run.op {
		case opConst0:
			for i := range body {
				regs[body[i].dst] = 0
			}
		case opConst1:
			for i := range body {
				regs[body[i].dst] = ^uint64(0)
			}
		case opCopy:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = regs[uint16(ins.a)]
			}
		case opNot:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = ^regs[uint16(ins.a)]
			}
		case opAnd:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = regs[uint16(ins.a)] & regs[ins.b]
			}
		case opOr:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = regs[uint16(ins.a)] | regs[ins.b]
			}
		case opXor:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = regs[uint16(ins.a)] ^ regs[ins.b]
			}
		case opAndN:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = regs[uint16(ins.a)] &^ regs[ins.b]
			}
		case opOrN:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = regs[uint16(ins.a)] | ^regs[ins.b]
			}
		case opNand:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = ^(regs[uint16(ins.a)] & regs[ins.b])
			}
		case opNor:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = ^(regs[uint16(ins.a)] | regs[ins.b])
			}
		case opXnor:
			for i := range body {
				ins := &body[i]
				regs[ins.dst] = ^(regs[uint16(ins.a)] ^ regs[ins.b])
			}
		case opMux:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = regs[uint16(ins.a)]&sel | regs[ins.b]&^sel
			}
		case opMuxNA:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = ^regs[uint16(ins.a)]&sel | regs[ins.b]&^sel
			}
		case opMuxNB:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = regs[uint16(ins.a)]&sel | ^regs[ins.b]&^sel
			}
		case opMuxNAB:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = ^(regs[uint16(ins.a)]&sel | regs[ins.b]&^sel)
			}
		case opXorMuxA:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = (regs[ins.a&0xffff]^regs[ins.a>>16])&sel | regs[ins.b]&^sel
			}
		case opXorMuxB:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = regs[ins.b]&sel | (regs[ins.a&0xffff]^regs[ins.a>>16])&^sel
			}
		case opXnorMuxA:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = ^(regs[ins.a&0xffff]^regs[ins.a>>16])&sel | regs[ins.b]&^sel
			}
		case opXnorMuxB:
			for i := range body {
				ins := &body[i]
				sel := regs[ins.c]
				regs[ins.dst] = regs[ins.b]&sel | ^(regs[ins.a&0xffff]^regs[ins.a>>16])&^sel
			}
		case opXorK:
			for i := range body {
				ins := &body[i]
				args := p.args[ins.a : ins.a+uint32(ins.n)]
				x := regs[args[0]]
				for _, a := range args[1:] {
					x ^= regs[a]
				}
				if ins.c != 0 {
					x = ^x
				}
				regs[ins.dst] = x
			}
		case opReduce:
			for i := range body {
				ins := &body[i]
				lut := ins.a
				rows := st.rows[lut]
				regs[ins.dst] = st.reduce(rows[ins.c:], int(ins.n), p.desc.LUTs[lut].Inputs)
			}
		case opBRAM:
			for i := range body {
				st.evalGroup(&p.groups[body[i].a])
			}
		case opAdder:
			for i := range body {
				rec := &p.desc.Adders[body[i].a]
				var carry uint64
				for j := range rec.A {
					av, bv := regs[rec.A[j]], regs[rec.B[j]]
					x := av ^ bv
					regs[rec.Sum[j]] = x ^ carry
					carry = av&bv | carry&x
				}
			}
		}
	}
}

// r2/r4 view a register slot's words as a fixed-size array. The slice
// argument is resliced by the caller to the full W<<16 word space, so
// the conversion's length check always passes and the per-word accesses
// are check-free. Both inline.
func r2(regs []uint64, s uint16) *[2]uint64 { return (*[2]uint64)(regs[int(s)*2:]) }
func r4(regs []uint64, s uint16) *[4]uint64 { return (*[4]uint64)(regs[int(s)*4:]) }

// settle2 is the two-word (65..128 lanes) evaluator body: every opcode
// kernel hand-widened to explicit word-pair statements — the gc
// compiler neither unrolls short loops nor SSA-decomposes arrays, so
// spelling the words out is what keeps the wide path near 2x the
// single-word cost instead of 3-4x.
func (st *progState) settle2() {
	p := st.prog
	st.preambleWide()
	regs := st.regs[: 2 << 16 : 2 << 16]
	insns := st.insns
	for r := range st.runs {
		run := &st.runs[r]
		body := insns[run.lo:run.hi]
		switch run.op {
		case opConst0:
			for i := range body {
				d := r2(regs, body[i].dst)
				d[0], d[1] = 0, 0
			}
		case opConst1:
			for i := range body {
				d := r2(regs, body[i].dst)
				d[0], d[1] = ^uint64(0), ^uint64(0)
			}
		case opCopy:
			for i := range body {
				ins := &body[i]
				d, a := r2(regs, ins.dst), r2(regs, uint16(ins.a))
				d[0], d[1] = a[0], a[1]
			}
		case opNot:
			for i := range body {
				ins := &body[i]
				d, a := r2(regs, ins.dst), r2(regs, uint16(ins.a))
				d[0], d[1] = ^a[0], ^a[1]
			}
		case opAnd:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = a[0]&b[0], a[1]&b[1]
			}
		case opOr:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = a[0]|b[0], a[1]|b[1]
			}
		case opXor:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = a[0]^b[0], a[1]^b[1]
			}
		case opAndN:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = a[0]&^b[0], a[1]&^b[1]
			}
		case opOrN:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = a[0]|^b[0], a[1]|^b[1]
			}
		case opNand:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = ^(a[0] & b[0]), ^(a[1] & b[1])
			}
		case opNor:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = ^(a[0] | b[0]), ^(a[1] | b[1])
			}
		case opXnor:
			for i := range body {
				ins := &body[i]
				d, a, b := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b)
				d[0], d[1] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1])
			}
		case opMux:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b), r2(regs, ins.c)
				d[0] = a[0]&c[0] | b[0]&^c[0]
				d[1] = a[1]&c[1] | b[1]&^c[1]
			}
		case opMuxNA:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b), r2(regs, ins.c)
				d[0] = ^a[0]&c[0] | b[0]&^c[0]
				d[1] = ^a[1]&c[1] | b[1]&^c[1]
			}
		case opMuxNB:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b), r2(regs, ins.c)
				d[0] = a[0]&c[0] | ^b[0]&^c[0]
				d[1] = a[1]&c[1] | ^b[1]&^c[1]
			}
		case opMuxNAB:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, ins.b), r2(regs, ins.c)
				d[0] = ^(a[0]&c[0] | b[0]&^c[0])
				d[1] = ^(a[1]&c[1] | b[1]&^c[1])
			}
		case opXorMuxA:
			for i := range body {
				ins := &body[i]
				d, x, y := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, uint16(ins.a>>16))
				b, c := r2(regs, ins.b), r2(regs, ins.c)
				d[0] = (x[0]^y[0])&c[0] | b[0]&^c[0]
				d[1] = (x[1]^y[1])&c[1] | b[1]&^c[1]
			}
		case opXorMuxB:
			for i := range body {
				ins := &body[i]
				d, x, y := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, uint16(ins.a>>16))
				b, c := r2(regs, ins.b), r2(regs, ins.c)
				d[0] = b[0]&c[0] | (x[0]^y[0])&^c[0]
				d[1] = b[1]&c[1] | (x[1]^y[1])&^c[1]
			}
		case opXnorMuxA:
			for i := range body {
				ins := &body[i]
				d, x, y := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, uint16(ins.a>>16))
				b, c := r2(regs, ins.b), r2(regs, ins.c)
				d[0] = ^(x[0]^y[0])&c[0] | b[0]&^c[0]
				d[1] = ^(x[1]^y[1])&c[1] | b[1]&^c[1]
			}
		case opXnorMuxB:
			for i := range body {
				ins := &body[i]
				d, x, y := r2(regs, ins.dst), r2(regs, uint16(ins.a)), r2(regs, uint16(ins.a>>16))
				b, c := r2(regs, ins.b), r2(regs, ins.c)
				d[0] = b[0]&c[0] | ^(x[0]^y[0])&^c[0]
				d[1] = b[1]&c[1] | ^(x[1]^y[1])&^c[1]
			}
		case opXorK:
			for i := range body {
				ins := &body[i]
				args := p.args[ins.a : ins.a+uint32(ins.n)]
				a0 := r2(regs, uint16(args[0]))
				x0, x1 := a0[0], a0[1]
				for _, a := range args[1:] {
					aa := r2(regs, uint16(a))
					x0 ^= aa[0]
					x1 ^= aa[1]
				}
				if ins.c != 0 {
					x0, x1 = ^x0, ^x1
				}
				d := r2(regs, ins.dst)
				d[0], d[1] = x0, x1
			}
		case opReduce:
			for i := range body {
				ins := &body[i]
				rows := st.rows[ins.a]
				mask := uint8(3)
				if ins.b != 0 {
					mask = st.reduceMask[ins.a]
				}
				inputs := p.desc.LUTs[ins.a].Inputs
				for w := 0; w < 2; w++ {
					if mask>>uint(w)&1 != 0 {
						regs[int(ins.dst)*2+w] = st.reduceWord(rows[w*64+int(ins.c):], int(ins.n), inputs, w)
					}
				}
			}
		case opBRAM:
			for i := range body {
				st.evalGroupWide(&p.groups[body[i].a])
			}
		case opAdder:
			for i := range body {
				rec := &p.desc.Adders[body[i].a]
				var c0, c1 uint64
				for j := range rec.A {
					a, b := r2(regs, uint16(rec.A[j])), r2(regs, uint16(rec.B[j]))
					s := r2(regs, uint16(rec.Sum[j]))
					x0 := a[0] ^ b[0]
					s[0] = x0 ^ c0
					c0 = a[0]&b[0] | c0&x0
					x1 := a[1] ^ b[1]
					s[1] = x1 ^ c1
					c1 = a[1]&b[1] | c1&x1
				}
			}
		}
	}
}

// settle4 is the four-word (129..256 lanes) evaluator body.
func (st *progState) settle4() {
	p := st.prog
	st.preambleWide()
	regs := st.regs[: 4 << 16 : 4 << 16]
	insns := st.insns
	for r := range st.runs {
		run := &st.runs[r]
		body := insns[run.lo:run.hi]
		switch run.op {
		case opConst0:
			for i := range body {
				d := r4(regs, body[i].dst)
				d[0], d[1], d[2], d[3] = 0, 0, 0, 0
			}
		case opConst1:
			for i := range body {
				d := r4(regs, body[i].dst)
				d[0], d[1], d[2], d[3] = ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
			}
		case opCopy:
			for i := range body {
				ins := &body[i]
				d, a := r4(regs, ins.dst), r4(regs, uint16(ins.a))
				d[0], d[1], d[2], d[3] = a[0], a[1], a[2], a[3]
			}
		case opNot:
			for i := range body {
				ins := &body[i]
				d, a := r4(regs, ins.dst), r4(regs, uint16(ins.a))
				d[0], d[1], d[2], d[3] = ^a[0], ^a[1], ^a[2], ^a[3]
			}
		case opAnd:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
			}
		case opOr:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
			}
		case opXor:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
			}
		case opAndN:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = a[0]&^b[0], a[1]&^b[1], a[2]&^b[2], a[3]&^b[3]
			}
		case opOrN:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = a[0]|^b[0], a[1]|^b[1], a[2]|^b[2], a[3]|^b[3]
			}
		case opNand:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
			}
		case opNor:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
			}
		case opXnor:
			for i := range body {
				ins := &body[i]
				d, a, b := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b)
				d[0], d[1], d[2], d[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
			}
		case opMux:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b), r4(regs, ins.c)
				d[0] = a[0]&c[0] | b[0]&^c[0]
				d[1] = a[1]&c[1] | b[1]&^c[1]
				d[2] = a[2]&c[2] | b[2]&^c[2]
				d[3] = a[3]&c[3] | b[3]&^c[3]
			}
		case opMuxNA:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b), r4(regs, ins.c)
				d[0] = ^a[0]&c[0] | b[0]&^c[0]
				d[1] = ^a[1]&c[1] | b[1]&^c[1]
				d[2] = ^a[2]&c[2] | b[2]&^c[2]
				d[3] = ^a[3]&c[3] | b[3]&^c[3]
			}
		case opMuxNB:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b), r4(regs, ins.c)
				d[0] = a[0]&c[0] | ^b[0]&^c[0]
				d[1] = a[1]&c[1] | ^b[1]&^c[1]
				d[2] = a[2]&c[2] | ^b[2]&^c[2]
				d[3] = a[3]&c[3] | ^b[3]&^c[3]
			}
		case opMuxNAB:
			for i := range body {
				ins := &body[i]
				d, a, b, c := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, ins.b), r4(regs, ins.c)
				d[0] = ^(a[0]&c[0] | b[0]&^c[0])
				d[1] = ^(a[1]&c[1] | b[1]&^c[1])
				d[2] = ^(a[2]&c[2] | b[2]&^c[2])
				d[3] = ^(a[3]&c[3] | b[3]&^c[3])
			}
		case opXorMuxA:
			for i := range body {
				ins := &body[i]
				d, x, y := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, uint16(ins.a>>16))
				b, c := r4(regs, ins.b), r4(regs, ins.c)
				d[0] = (x[0]^y[0])&c[0] | b[0]&^c[0]
				d[1] = (x[1]^y[1])&c[1] | b[1]&^c[1]
				d[2] = (x[2]^y[2])&c[2] | b[2]&^c[2]
				d[3] = (x[3]^y[3])&c[3] | b[3]&^c[3]
			}
		case opXorMuxB:
			for i := range body {
				ins := &body[i]
				d, x, y := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, uint16(ins.a>>16))
				b, c := r4(regs, ins.b), r4(regs, ins.c)
				d[0] = b[0]&c[0] | (x[0]^y[0])&^c[0]
				d[1] = b[1]&c[1] | (x[1]^y[1])&^c[1]
				d[2] = b[2]&c[2] | (x[2]^y[2])&^c[2]
				d[3] = b[3]&c[3] | (x[3]^y[3])&^c[3]
			}
		case opXnorMuxA:
			for i := range body {
				ins := &body[i]
				d, x, y := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, uint16(ins.a>>16))
				b, c := r4(regs, ins.b), r4(regs, ins.c)
				d[0] = ^(x[0]^y[0])&c[0] | b[0]&^c[0]
				d[1] = ^(x[1]^y[1])&c[1] | b[1]&^c[1]
				d[2] = ^(x[2]^y[2])&c[2] | b[2]&^c[2]
				d[3] = ^(x[3]^y[3])&c[3] | b[3]&^c[3]
			}
		case opXnorMuxB:
			for i := range body {
				ins := &body[i]
				d, x, y := r4(regs, ins.dst), r4(regs, uint16(ins.a)), r4(regs, uint16(ins.a>>16))
				b, c := r4(regs, ins.b), r4(regs, ins.c)
				d[0] = b[0]&c[0] | ^(x[0]^y[0])&^c[0]
				d[1] = b[1]&c[1] | ^(x[1]^y[1])&^c[1]
				d[2] = b[2]&c[2] | ^(x[2]^y[2])&^c[2]
				d[3] = b[3]&c[3] | ^(x[3]^y[3])&^c[3]
			}
		case opXorK:
			for i := range body {
				ins := &body[i]
				args := p.args[ins.a : ins.a+uint32(ins.n)]
				a0 := r4(regs, uint16(args[0]))
				x0, x1, x2, x3 := a0[0], a0[1], a0[2], a0[3]
				for _, a := range args[1:] {
					aa := r4(regs, uint16(a))
					x0 ^= aa[0]
					x1 ^= aa[1]
					x2 ^= aa[2]
					x3 ^= aa[3]
				}
				if ins.c != 0 {
					x0, x1, x2, x3 = ^x0, ^x1, ^x2, ^x3
				}
				d := r4(regs, ins.dst)
				d[0], d[1], d[2], d[3] = x0, x1, x2, x3
			}
		case opReduce:
			for i := range body {
				ins := &body[i]
				rows := st.rows[ins.a]
				mask := uint8(15)
				if ins.b != 0 {
					mask = st.reduceMask[ins.a]
				}
				inputs := p.desc.LUTs[ins.a].Inputs
				for w := 0; w < 4; w++ {
					if mask>>uint(w)&1 != 0 {
						regs[int(ins.dst)*4+w] = st.reduceWord(rows[w*64+int(ins.c):], int(ins.n), inputs, w)
					}
				}
			}
		case opBRAM:
			for i := range body {
				st.evalGroupWide(&p.groups[body[i].a])
			}
		case opAdder:
			for i := range body {
				rec := &p.desc.Adders[body[i].a]
				var c0, c1, c2, c3 uint64
				for j := range rec.A {
					a, b := r4(regs, uint16(rec.A[j])), r4(regs, uint16(rec.B[j]))
					s := r4(regs, uint16(rec.Sum[j]))
					x0 := a[0] ^ b[0]
					s[0] = x0 ^ c0
					c0 = a[0]&b[0] | c0&x0
					x1 := a[1] ^ b[1]
					s[1] = x1 ^ c1
					c1 = a[1]&b[1] | c1&x1
					x2 := a[2] ^ b[2]
					s[2] = x2 ^ c2
					c2 = a[2]&b[2] | c2&x2
					x3 := a[3] ^ b[3]
					s[3] = x3 ^ c3
					c3 = a[3]&b[3] | c3&x3
				}
			}
		}
	}
}

// reduce collapses the first 1<<k rows through a mux tree addressed by
// the input nets — the bitsliced TT.Eval for patched/dense LUTs.
func (st *progState) reduce(rows []uint64, k int, inputs []uint32) uint64 {
	if k == 0 {
		return rows[0]
	}
	half := 1 << uint(k-1)
	sel := st.regs[inputs[k-1]]
	v := st.rscratch[:half]
	for m := 0; m < half; m++ {
		v[m] = sel&rows[m|half] | ^sel&rows[m]
	}
	for j := k - 2; j >= 0; j-- {
		sel = st.regs[inputs[j]]
		half >>= 1
		for m := 0; m < half; m++ {
			v[m] = sel&v[m|half] | ^sel&v[m]
		}
	}
	return v[0]
}

// reduceWord is the multi-word states' mux reduce for one 64-lane word:
// rows is that word's contiguous planar block, and the tree collapses
// exactly like the single-word reduce — unit-stride rows, the word's
// select masks read with the slot stride. Masked reduce fixups call it
// only for the words that actually hold a patched lane.
func (st *progState) reduceWord(rows []uint64, k int, inputs []uint32, w int) uint64 {
	if k == 0 {
		return rows[0]
	}
	W := st.words
	half := 1 << uint(k-1)
	sel := st.regs[int(inputs[k-1])*W+w]
	v := st.rscratch[:half]
	for m := 0; m < half; m++ {
		v[m] = sel&rows[m|half] | ^sel&rows[m]
	}
	for j := k - 2; j >= 0; j-- {
		sel = st.regs[int(inputs[j])*W+w]
		half >>= 1
		for m := 0; m < half; m++ {
			v[m] = sel&v[m|half] | ^sel&v[m]
		}
	}
	return v[0]
}

// evalGroupWide evaluates one BRAM group for a multi-word state: each
// 64-lane block runs the single-block gather/transpose/lookup/scatter
// independently (the transpose unit is 64x64), so a W-word group costs
// W times the single-word group — no cross-word work exists.
func (st *progState) evalGroupWide(g *bramGroup) {
	for w := 0; w < st.words; w++ {
		st.evalGroupBlock(g, w)
	}
}

// evalGroupBlock is one 64-lane block of a multi-word group evaluation:
// the mirror of evalGroup's multi-lane path with every register access
// strided to word w and the per-lane tables offset to the block's
// global lane range. Blocks past the active lane count (a 130-lane
// state runs 4 words) are skipped; their stale register bits never
// reach an active lane under the lane-locality invariant.
func (st *progState) evalGroupBlock(g *bramGroup, w int) {
	W := st.words
	regs := st.regs
	bl := st.lanes - w*LaneWordBits
	if bl <= 0 {
		return
	}
	if bl > LaneWordBits {
		bl = LaneWordBits
	}
	laneBase := w * LaneWordBits
	sc := &st.scratch
	row := 0
	for i := range g.members {
		for _, a := range g.members[i].addr {
			sc[row] = regs[int(a)*W+w]
			row++
		}
	}
	transpose64(sc)
	out := &st.scratch2
	for pi := range g.packs {
		p := &g.packs[pi]
		for ei := 0; ei < len(p.entries); ei += 2 {
			e0 := &p.entries[ei]
			if ei+1 < len(p.entries) {
				e1 := &p.entries[ei+1]
				if st.tabUniform[e0.bram] && st.tabUniform[e1.bram] {
					u0 := st.tabs[e0.bram*MaxLanes][: e0.mask+1 : e0.mask+1]
					u1 := st.tabs[e1.bram*MaxLanes][: e1.mask+1 : e1.mask+1]
					if ei == 0 {
						for L := 0; L < bl; L++ {
							s := sc[L]
							out[L] = u0[s>>e0.addrOff&e0.mask]&e0.outMask |
								(u1[s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					} else {
						for L := 0; L < bl; L++ {
							s := sc[L]
							out[L] |= (u0[s>>e0.addrOff&e0.mask]&e0.outMask)<<e0.shift |
								(u1[s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					}
				} else {
					t0 := st.tabs[e0.bram*MaxLanes+laneBase : e0.bram*MaxLanes+laneBase+LaneWordBits]
					t1 := st.tabs[e1.bram*MaxLanes+laneBase : e1.bram*MaxLanes+laneBase+LaneWordBits]
					if ei == 0 {
						for L := 0; L < bl; L++ {
							s := sc[L]
							out[L] = t0[L][s>>e0.addrOff&e0.mask]&e0.outMask |
								(t1[L][s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					} else {
						for L := 0; L < bl; L++ {
							s := sc[L]
							out[L] |= (t0[L][s>>e0.addrOff&e0.mask]&e0.outMask)<<e0.shift |
								(t1[L][s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					}
				}
				continue
			}
			if st.tabUniform[e0.bram] {
				u0 := st.tabs[e0.bram*MaxLanes][: e0.mask+1 : e0.mask+1]
				if ei == 0 {
					for L := 0; L < bl; L++ {
						out[L] = u0[sc[L]>>e0.addrOff&e0.mask] & e0.outMask
					}
				} else {
					for L := 0; L < bl; L++ {
						out[L] |= (u0[sc[L]>>e0.addrOff&e0.mask] & e0.outMask) << e0.shift
					}
				}
			} else {
				t0 := st.tabs[e0.bram*MaxLanes+laneBase : e0.bram*MaxLanes+laneBase+LaneWordBits]
				if ei == 0 {
					for L := 0; L < bl; L++ {
						out[L] = t0[L][sc[L]>>e0.addrOff&e0.mask] & e0.outMask
					}
				} else {
					for L := 0; L < bl; L++ {
						out[L] |= (t0[L][sc[L]>>e0.addrOff&e0.mask] & e0.outMask) << e0.shift
					}
				}
			}
		}
		transpose64(out)
		for bi, dst := range p.dsts {
			regs[int(dst)*W+w] = out[bi]
		}
	}
}

// evalGroup evaluates one BRAM group. The multi-lane path transposes
// the packed address bits once for the whole group, does the per-lane
// lookups pack-merged, and transposes each pack’s output word back
// into bitsliced nets. The 1-lane path gathers directly — three 64x64
// transposes are a poor trade for a single lane.
func (st *progState) evalGroup(g *bramGroup) {
	regs := st.regs
	if st.lanes == 1 {
		for i := range g.members {
			m := &g.members[i]
			addr := 0
			for bi, a := range m.addr {
				addr |= int(regs[a]&1) << uint(bi)
			}
			w := st.tabs[m.bram*MaxLanes][addr]
			for bi, out := range m.outs {
				regs[out] = -(w >> uint(bi) & 1)
			}
		}
		return
	}
	sc := &st.scratch
	row := 0
	for i := range g.members {
		for _, a := range g.members[i].addr {
			sc[row] = regs[a]
			row++
		}
	}
	// Rows beyond the packed address bits hold stale values; every
	// member masks its own address slice, so they never matter.
	transpose64(sc)
	out := &st.scratch2
	lanes := st.lanes
	for pi := range g.packs {
		p := &g.packs[pi]
		// Two entries per pass over the lanes: table headers and the
		// uniform-lanes check (all lanes share one table — the common
		// unpatched-BRAM case) hoist out of the lane loop, and the pack
		// word streams through out[] at most half as often as entries.
		for ei := 0; ei < len(p.entries); ei += 2 {
			e0 := &p.entries[ei]
			if ei+1 < len(p.entries) {
				e1 := &p.entries[ei+1]
				if st.tabUniform[e0.bram] && st.tabUniform[e1.bram] {
					// Reslicing to the address range proves the lookup
					// index in bounds, dropping the per-lane checks.
					u0 := st.tabs[e0.bram*MaxLanes][: e0.mask+1 : e0.mask+1]
					u1 := st.tabs[e1.bram*MaxLanes][: e1.mask+1 : e1.mask+1]
					if ei == 0 {
						for L := 0; L < lanes; L++ {
							s := sc[L]
							out[L] = u0[s>>e0.addrOff&e0.mask]&e0.outMask |
								(u1[s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					} else {
						for L := 0; L < lanes; L++ {
							s := sc[L]
							out[L] |= (u0[s>>e0.addrOff&e0.mask]&e0.outMask)<<e0.shift |
								(u1[s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					}
				} else {
					t0 := st.tabs[e0.bram*MaxLanes : (e0.bram+1)*MaxLanes]
					t1 := st.tabs[e1.bram*MaxLanes : (e1.bram+1)*MaxLanes]
					if ei == 0 {
						for L := 0; L < lanes; L++ {
							s := sc[L]
							out[L] = t0[L][s>>e0.addrOff&e0.mask]&e0.outMask |
								(t1[L][s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					} else {
						for L := 0; L < lanes; L++ {
							s := sc[L]
							out[L] |= (t0[L][s>>e0.addrOff&e0.mask]&e0.outMask)<<e0.shift |
								(t1[L][s>>e1.addrOff&e1.mask]&e1.outMask)<<e1.shift
						}
					}
				}
				continue
			}
			if st.tabUniform[e0.bram] {
				u0 := st.tabs[e0.bram*MaxLanes][: e0.mask+1 : e0.mask+1]
				if ei == 0 {
					for L := 0; L < lanes; L++ {
						out[L] = u0[sc[L]>>e0.addrOff&e0.mask] & e0.outMask
					}
				} else {
					for L := 0; L < lanes; L++ {
						out[L] |= (u0[sc[L]>>e0.addrOff&e0.mask] & e0.outMask) << e0.shift
					}
				}
			} else {
				t0 := st.tabs[e0.bram*MaxLanes : (e0.bram+1)*MaxLanes]
				if ei == 0 {
					for L := 0; L < lanes; L++ {
						out[L] = t0[L][sc[L]>>e0.addrOff&e0.mask] & e0.outMask
					}
				} else {
					for L := 0; L < lanes; L++ {
						out[L] |= (t0[L][sc[L]>>e0.addrOff&e0.mask] & e0.outMask) << e0.shift
					}
				}
			}
		}
		transpose64(out)
		for bi, dst := range p.dsts {
			regs[dst] = out[bi]
		}
	}
}
