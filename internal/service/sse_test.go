package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"snowbma/internal/obs"
)

// decodeSSE parses an SSE body into its data frames.
func decodeSSE(t *testing.T, body string) []obs.BusEvent {
	t.Helper()
	var out []obs.BusEvent
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev obs.BusEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

func jobStates(events []obs.BusEvent) []string {
	var states []string
	for _, ev := range events {
		if ev.Type == obs.EventJob {
			states = append(states, ev.Name)
		}
	}
	return states
}

// TestJobEventsLifecycle replays a finished job's full event stream:
// the queued→running→done transitions arrive in order and the stream
// closes itself on the terminal event.
func TestJobEventsLifecycle(t *testing.T) {
	e := newStubEngine(1, 4, instant)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateDone)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/jobs/"+st.ID+"/events", nil)
	req.SetPathValue("id", st.ID)
	e.handleJobEvents(rec, req)
	states := jobStates(decodeSSE(t, rec.Body.String()))
	if got := strings.Join(states, ","); got != "queued,running,done" {
		t.Fatalf("lifecycle over SSE = %q", got)
	}
}

// TestJobEventsMidJoinCatchup joins the stream while the job is
// mid-flight: the ring replays the phases already executed, the rest
// arrives live, and the terminal event closes the stream.
func TestJobEventsMidJoinCatchup(t *testing.T) {
	phase1 := make(chan struct{})
	gate := make(chan struct{})
	e := newStubEngine(1, 4, func(ctx context.Context, j *job) (any, error) {
		run := j.tel.StartSpan("attack.run")
		s := j.tel.StartSpan("attack.batch_scan")
		s.End()
		close(phase1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		v := j.tel.StartSpan("attack.verify_zpath")
		v.End()
		run.End()
		return "ok", nil
	})
	defer e.Shutdown(context.Background())
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	<-phase1 // the job is mid-flight, first phase traced

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(gate)

	var caught, live bool
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev obs.BusEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		switch {
		case ev.Type == obs.EventSpanStart && ev.Name == "attack.batch_scan":
			caught = true // replayed from the ring: happened before we joined
		case ev.Type == obs.EventSpanStart && ev.Name == "attack.verify_zpath":
			live = true // streamed live: happened after we joined
		case ev.Type == obs.EventJob:
			states = append(states, ev.Name)
		}
	}
	if !caught {
		t.Fatal("mid-join did not catch up on the already-executed phase")
	}
	if !live {
		t.Fatal("mid-join did not receive the live phase")
	}
	if got := strings.Join(states, ","); got != "queued,running,done" {
		t.Fatalf("lifecycle = %q", got)
	}
}

// TestJobEventsLastEventIDResume reconnects with Last-Event-ID and must
// not see events it already consumed.
func TestJobEventsLastEventIDResume(t *testing.T) {
	e := newStubEngine(1, 4, instant)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateDone)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/jobs/"+st.ID+"/events", nil)
	req.SetPathValue("id", st.ID)
	e.handleJobEvents(rec, req)
	full := decodeSSE(t, rec.Body.String())
	if len(full) < 3 {
		t.Fatalf("full stream too short: %+v", full)
	}
	// "Disconnect" after the first event and resume from its seq.
	rec2 := httptest.NewRecorder()
	req2 := httptest.NewRequest("GET", "/jobs/"+st.ID+"/events", nil)
	req2.SetPathValue("id", st.ID)
	req2.Header.Set("Last-Event-ID", fmt.Sprint(full[0].Seq))
	e.handleJobEvents(rec2, req2)
	resumed := decodeSSE(t, rec2.Body.String())
	if len(resumed) != len(full)-1 {
		t.Fatalf("resume replayed %d events, want %d", len(resumed), len(full)-1)
	}
	for _, ev := range resumed {
		if ev.Seq <= full[0].Seq {
			t.Fatalf("resume replayed already-seen seq %d", ev.Seq)
		}
	}
}

// TestJobEventsEpilogueAfterEviction: when the ring has evicted a
// finished job's events, the stream synthesizes a terminal event and
// closes instead of hanging.
func TestJobEventsEpilogueAfterEviction(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 4, EventBuffer: 4})
	e.execFn = instant
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateDone)
	// Push the job's events out of the 4-deep ring.
	for i := 0; i < 16; i++ {
		e.bus.Publish(obs.BusEvent{Type: obs.EventProgress, Name: "filler"})
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/jobs/"+st.ID+"/events", nil)
	req.SetPathValue("id", st.ID)
	done := make(chan struct{})
	go func() { e.handleJobEvents(rec, req); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream hung waiting for evicted history")
	}
	states := jobStates(decodeSSE(t, rec.Body.String()))
	if len(states) != 1 || states[0] != StateDone {
		t.Fatalf("epilogue states = %v, want [done]", states)
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	e := newStubEngine(1, 1, instant)
	defer e.Shutdown(context.Background())
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", resp.StatusCode)
	}
}

// TestSlowSubscriberDropsCounted: a subscriber that never drains loses
// events without stalling job execution, and the loss is accounted both
// on the subscription and in the obs.events_dropped metric.
func TestSlowSubscriberDropsCounted(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 16, RuntimePoll: 5 * time.Millisecond})
	e.execFn = instant
	defer e.Shutdown(context.Background())

	sub, _ := e.Bus().SubscribeFrom(0, 1) // 1-deep, never drained
	defer sub.Close()
	deadline := time.Now().Add(10 * time.Second)
	for e.Bus().Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops despite a saturated subscriber")
		}
		st, err := e.Submit(JobSpec{Kind: KindAttack})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, e, st.ID, StateDone)
	}
	if sub.Drops() == 0 {
		t.Fatal("per-subscriber drop counter did not move")
	}
	// The runtime poller mirrors the bus total into the metrics registry.
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteString("\n")
		}
		resp.Body.Close()
		body := sb.String()
		if strings.Contains(body, "obs_events_dropped_total") &&
			!strings.Contains(body, "obs_events_dropped_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("obs_events_dropped_total never surfaced:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFirehoseClosesOnShutdown: the /events stream ends (clean EOF, no
// error) when the engine shuts down and the bus closes.
func TestFirehoseClosesOnShutdown(t *testing.T) {
	e := newStubEngine(1, 4, instant)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("firehose Content-Type = %q", ct)
	}
	streamDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		streamDone <- sc.Err()
	}()
	// Give the stream a moment to go live, then drain the engine.
	time.Sleep(50 * time.Millisecond)
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("firehose ended with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("firehose did not close on shutdown")
	}
}

// TestFirehoseIsLiveOnly: without Last-Event-ID the firehose starts at
// the current sequence — history belongs to the per-job streams.
func TestFirehoseIsLiveOnly(t *testing.T) {
	e := newStubEngine(1, 4, instant)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateDone)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	if strings.Contains(sb.String(), `"name":"queued"`) {
		t.Fatalf("firehose replayed history:\n%s", sb.String())
	}
}

// spanNode is a reconstructed span-tree node for the differential test.
type spanNode struct {
	name     string
	children []*spanNode
}

// canon renders a span tree as a canonical string: names in sibling
// order, children parenthesized.
func canon(nodes []*spanNode) string {
	var parts []string
	for _, n := range nodes {
		s := n.name
		if len(n.children) > 0 {
			s += "(" + canon(n.children) + ")"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// treeFromPairs builds root nodes from (id, parent, name) triples,
// preserving first-seen sibling order.
func treeFromPairs(ids []int, parents []int, names []string) []*spanNode {
	nodes := map[int]*spanNode{}
	var roots []*spanNode
	for i, id := range ids {
		n := &spanNode{name: names[i]}
		nodes[id] = n
		if p, ok := nodes[parents[i]]; ok && parents[i] != 0 {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// TestSSEPhaseTreeMatchesTrace is the differential acceptance check: a
// real attack job's live SSE event stream must reconstruct exactly the
// phase tree its NDJSON trace reports after the fact.
func TestSSEPhaseTreeMatchesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes a victim")
	}
	e := New(Config{Workers: 1, QueueDepth: 4})
	defer e.Shutdown(context.Background())
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	st, err := e.Submit(JobSpec{Kind: KindAttack, Victim: VictimSpec{Key: smokeKey}, IV: smokeIVs[0]})
	if err != nil {
		t.Fatal(err)
	}
	// Consume the job stream until the terminal event closes it.
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var ids, parents []int
	var names []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev obs.BusEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == obs.EventSpanStart {
			ids = append(ids, ev.Span)
			parents = append(parents, ev.Parent)
			names = append(names, ev.Name)
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sseTree := canon(treeFromPairs(ids, parents, names))

	// The NDJSON trace of the same job.
	resp, err = http.Get(srv.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tids, tparents []int
	var tnames []string
	sc = bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "span" {
			tids = append(tids, ev.ID)
			tparents = append(tparents, ev.Parent)
			tnames = append(tnames, ev.Name)
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	traceTree := canon(treeFromPairs(tids, tparents, tnames))

	if len(tnames) == 0 {
		t.Fatal("trace reported no spans")
	}
	if sseTree != traceTree {
		t.Fatalf("phase tree mismatch:\nSSE:   %s\ntrace: %s", sseTree, traceTree)
	}
	// Sanity: the tree contains the attack's named phases.
	sort.Strings(names)
	for _, phase := range []string{"service.job", "attack.run", "attack.verify_zpath"} {
		if i := sort.SearchStrings(names, phase); i >= len(names) || names[i] != phase {
			t.Fatalf("phase %q missing from SSE stream (have %v)", phase, names)
		}
	}
}
