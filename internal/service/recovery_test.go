package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"snowbma/internal/store"
)

// crashLog authors a WAL exactly as a crashed engine would have left
// it: two finished jobs, one job killed mid-run, one killed while still
// queued. Returning the directory lets the test Open a fresh engine
// over the wreckage.
func crashLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(tenant string) json.RawMessage {
		b, err := json.Marshal(JobSpec{Kind: KindAttack, Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	recs := []store.Record{
		{Job: "job-0001", State: StateQueued, Kind: KindAttack, Spec: spec("")},
		{Job: "job-0001", State: StateRunning},
		{Job: "job-0001", State: StateDone, Result: json.RawMessage(`{"verified":true,"loads":3}`)},
		{Job: "job-0002", State: StateQueued, Kind: KindAttack, Spec: spec("acme")},
		{Job: "job-0002", State: StateRunning},
		{Job: "job-0002", State: StateFailed, Error: "device wedged"},
		{Job: "job-0003", State: StateQueued, Kind: KindAttack, Spec: spec("acme")},
		{Job: "job-0003", State: StateRunning}, // crashed mid-run
		{Job: "job-0004", State: StateQueued, Kind: KindAttack, Spec: spec("")},
		// job-0004 never started: crashed while queued.
	}
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRecoveryReplaysLog is the core durability contract in one pass:
// finished jobs come back queryable with their results and errors,
// incomplete jobs re-run exactly once under their original ids, the id
// sequence resumes past the replayed ids, and after shutdown the log
// holds exactly one terminal record per job.
func TestRecoveryReplaysLog(t *testing.T) {
	dir := crashLog(t)
	st, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var ran []string
	e, err := Open(Config{
		Workers:    1,
		QueueDepth: 8,
		Store:      st,
		execOverride: func(ctx context.Context, j *job) (any, error) {
			mu.Lock()
			ran = append(ran, j.id)
			mu.Unlock()
			return "redone", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Terminal jobs restored verbatim.
	s1 := waitState(t, e, "job-0001", StateDone)
	if s1.Recovered {
		t.Fatal("finished job marked recovered; only re-enqueued jobs should be")
	}
	res, _, err := e.Result("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := res.(json.RawMessage)
	if !ok {
		t.Fatalf("restored result is %T, want json.RawMessage", res)
	}
	var parsed struct {
		Verified bool `json:"verified"`
		Loads    int  `json:"loads"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil || !parsed.Verified || parsed.Loads != 3 {
		t.Fatalf("restored result %s did not round-trip (err %v)", raw, err)
	}
	s2, err := e.Get("job-0002")
	if err != nil {
		t.Fatal(err)
	}
	if s2.State != StateFailed || s2.Error != "device wedged" || s2.Tenant != "acme" {
		t.Fatalf("job-0002 restored as %+v, want failed/device wedged/acme", s2)
	}

	// Incomplete jobs re-ran exactly once, flagged as recovered.
	for _, id := range []string{"job-0003", "job-0004"} {
		st := waitState(t, e, id, StateDone)
		if !st.Recovered {
			t.Fatalf("%s not marked recovered", id)
		}
	}
	mu.Lock()
	counts := map[string]int{}
	for _, id := range ran {
		counts[id]++
	}
	mu.Unlock()
	if len(counts) != 2 || counts["job-0003"] != 1 || counts["job-0004"] != 1 {
		t.Fatalf("executions after recovery = %v, want job-0003 and job-0004 exactly once", counts)
	}

	// The sequence resumes past every replayed id.
	s5, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	if s5.ID != "job-0005" {
		t.Fatalf("post-recovery submit got id %s, want job-0005", s5.ID)
	}
	waitState(t, e, s5.ID, StateDone)
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The log after shutdown: exactly one terminal record per job, and
	// recovery's compaction kept it near the snapshot size rather than
	// the full replayed history.
	w, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	terminals := map[string]int{}
	for _, r := range recs {
		switch r.State {
		case StateDone, StateFailed, StateCancelled:
			terminals[r.Job]++
		}
	}
	for job := 1; job <= 5; job++ {
		id := fmt.Sprintf("job-%04d", job)
		if terminals[id] != 1 {
			t.Fatalf("log holds %d terminal records for %s, want exactly 1 (log: %d records)",
				terminals[id], id, len(recs))
		}
	}
	if len(recs) > 11 {
		t.Fatalf("post-recovery log holds %d records; compaction should have folded the replayed history", len(recs))
	}
}

// TestRecoveryDoubleRestart: recovering twice in a row must not
// duplicate anything — the second engine sees only terminal records and
// re-runs nothing.
func TestRecoveryDoubleRestart(t *testing.T) {
	dir := crashLog(t)
	for round := 0; round < 2; round++ {
		st, err := store.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		ran := 0
		e, err := Open(Config{
			Workers: 1,
			Store:   st,
			execOverride: func(ctx context.Context, j *job) (any, error) {
				mu.Lock()
				ran++
				mu.Unlock()
				return "redone", nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"job-0001", "job-0002", "job-0003", "job-0004"} {
			deadline := time.Now().Add(10 * time.Second)
			for {
				s, err := e.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				if s.State == StateDone || s.State == StateFailed {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("round %d: %s stuck in %s", round, id, s.State)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		if err := e.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		got := ran
		mu.Unlock()
		want := 2 // job-0003 and job-0004, first round only
		if round == 1 {
			want = 0
		}
		if got != want {
			t.Fatalf("round %d re-ran %d jobs, want %d", round, got, want)
		}
	}
}

// TestRecoveryCorruptSpec: an incomplete record whose spec no longer
// validates becomes a failed job — visible, typed, and never silently
// dropped or retried forever.
func TestRecoveryCorruptSpec(t *testing.T) {
	dir := t.TempDir()
	w, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(store.Record{
		Job: "job-0001", State: StateQueued, Kind: "attack",
		Spec: json.RawMessage(`{"kind":"no-such-kind"}`),
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Workers: 1, Store: st, execOverride: instant})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	s, err := e.Get("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	if s.State != StateFailed || !strings.Contains(s.Error, "recovery") {
		t.Fatalf("corrupt-spec job restored as %+v, want failed with a recovery error", s)
	}
}

// TestDurableSubmitPersistsBeforeReturn: a job visible to the client is
// on the log — killing the engine without any shutdown still recovers
// it. Uses the Mem store to inspect records without filesystem timing.
func TestDurableSubmitPersistsBeforeReturn(t *testing.T) {
	mem := store.NewMem()
	fn, release := gate()
	e, err := Open(Config{Workers: 1, QueueDepth: 4, Store: mem, execOverride: fn})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Submit(JobSpec{Kind: KindAttack, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mem.Load()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Job == st.ID && r.State == StateQueued {
			if r.Tenant != "acme" || r.Spec == nil {
				t.Fatalf("queued record incomplete: %+v", r)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no queued record for %s on the log at Submit return (log %+v)", st.ID, recs)
	}
	release()
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
