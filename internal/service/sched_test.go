package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// schedJob builds the minimal job a raw scheduler test needs.
func schedJob(tenant string) *job {
	return &job{spec: JobSpec{Kind: KindAttack, Tenant: tenant}}
}

// TestSchedWeightedDispatch pins the stride math down exactly: with a
// 10:1 weight split and both backlogs full, every 11-dispatch window
// carries 10 heavy jobs and 1 light job. The scheduler is deterministic
// once the backlog is static, so the test asserts exact counts, not a
// statistical tolerance.
func TestSchedWeightedDispatch(t *testing.T) {
	contracts := map[string]TenantConfig{
		"heavy": {Weight: 10},
		"light": {Weight: 1},
	}
	s := newSched(100, func(name string) TenantConfig { return contracts[name] })
	for i := 0; i < 20; i++ {
		if err := s.push(schedJob("heavy")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := s.push(schedJob("light")); err != nil {
			t.Fatal(err)
		}
	}
	heavy, light := 0, 0
	for i := 0; i < 22; i++ {
		j, ok := s.pop()
		if !ok {
			t.Fatal("pop returned closed with jobs still queued")
		}
		switch j.spec.Tenant {
		case "heavy":
			heavy++
		case "light":
			light++
		}
	}
	if heavy != 20 || light != 2 {
		t.Fatalf("22 dispatches split heavy=%d light=%d, want 20/2 under 10:1 weights", heavy, light)
	}
}

// TestSchedPriorityClasses: a higher priority class is dispatched
// strictly first, regardless of weights or arrival order.
func TestSchedPriorityClasses(t *testing.T) {
	contracts := map[string]TenantConfig{
		"bulk":   {Weight: 10, Priority: 0},
		"urgent": {Weight: 1, Priority: 1},
	}
	s := newSched(100, func(name string) TenantConfig { return contracts[name] })
	for i := 0; i < 5; i++ {
		if err := s.push(schedJob("bulk")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.push(schedJob("urgent")); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		j, _ := s.pop()
		order = append(order, j.spec.Tenant)
	}
	want := []string{"urgent", "urgent", "urgent", "bulk", "bulk", "bulk", "bulk", "bulk"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want urgent jobs strictly first (%v)", order, want)
		}
	}
}

// TestTenantFairnessUnderLoad drives fairness through the whole engine:
// a plug job pins the single worker, two tenants with 10:1 weights pile
// up equal backlogs behind it, and the recorded execution order must
// hand the heavy tenant ten slots for every one of the light tenant's.
// A pure FIFO (the old global queue) would run all 20 heavy jobs before
// a single light one only if heavy submitted first — and would starve
// whichever tenant submitted last; the stride scheduler interleaves at
// the weight ratio no matter the submission interleaving.
func TestTenantFairnessUnderLoad(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var ran []string
	cfg := Config{
		Workers:    1,
		QueueDepth: 64,
		Tenants: map[string]TenantConfig{
			"heavy": {Weight: 10},
			"light": {Weight: 1},
		},
		execOverride: func(ctx context.Context, j *job) (any, error) {
			if j.spec.Tenant == "" { // the plug job
				<-release
				return "ok", nil
			}
			mu.Lock()
			ran = append(ran, j.spec.Tenant)
			mu.Unlock()
			return "ok", nil
		},
	}
	e := New(cfg)
	defer e.Shutdown(context.Background())

	if _, err := e.Submit(JobSpec{Kind: KindAttack}); err != nil {
		t.Fatal(err)
	}
	var last Status
	for i := 0; i < 20; i++ {
		// Interleave submissions so arrival order cannot fake fairness.
		if _, err := e.Submit(JobSpec{Kind: KindAttack, Tenant: "light"}); err != nil {
			t.Fatal(err)
		}
		st, err := e.Submit(JobSpec{Kind: KindAttack, Tenant: "heavy"})
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	close(release)
	waitState(t, e, last.ID, StateDone)

	mu.Lock()
	defer mu.Unlock()
	if len(ran) < 22 {
		t.Fatalf("only %d tenant jobs ran", len(ran))
	}
	heavy, light := 0, 0
	for _, tenant := range ran[:22] {
		if tenant == "heavy" {
			heavy++
		} else {
			light++
		}
	}
	// The exact stride split is 20/2; allow one slot of slack for the
	// plug job's own pass accounting.
	if heavy < 19 || light > 3 {
		t.Fatalf("first 22 dispatches split heavy=%d light=%d, want ~20/2 under 10:1 weights", heavy, light)
	}
}

// TestTenantQuotas: a zero-weight tenant is barred outright, a
// MaxQueued tenant is bounced at its cap, and both failures are
// ErrQuotaExceeded — distinct from the global ErrQueueFull.
func TestTenantQuotas(t *testing.T) {
	fn, release := gate()
	cfg := Config{
		Workers:    1,
		QueueDepth: 8,
		Tenants: map[string]TenantConfig{
			"banned": {Weight: 0},
			"capped": {Weight: 1, MaxQueued: 1},
		},
		execOverride: fn,
	}
	e := New(cfg)
	defer func() {
		release()
		e.Shutdown(context.Background())
	}()

	if _, err := e.Submit(JobSpec{Kind: KindAttack, Tenant: "banned"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("zero-weight tenant Submit = %v, want ErrQuotaExceeded", err)
	}
	// Pin the worker so subsequent submissions stay queued.
	plug, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, plug.ID, StateRunning)
	if _, err := e.Submit(JobSpec{Kind: KindAttack, Tenant: "capped"}); err != nil {
		t.Fatalf("first capped job rejected: %v", err)
	}
	_, err = e.Submit(JobSpec{Kind: KindAttack, Tenant: "capped"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Submit = %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("quota rejection must not alias ErrQueueFull")
	}
}

// TestQuotaHTTP429: the API maps ErrQuotaExceeded onto 429 with a body
// that names the quota, so clients can tell it apart from a full queue.
func TestQuotaHTTP429(t *testing.T) {
	e := New(Config{
		Workers:      1,
		QueueDepth:   4,
		Tenants:      map[string]TenantConfig{"banned": {Weight: 0}},
		execOverride: instant,
	})
	defer e.Shutdown(context.Background())
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		bytes.NewBufferString(`{"kind":"attack","tenant":"banned"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "quota") {
		t.Fatalf("error body %q does not name the quota", body.Error)
	}
}
