package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"snowbma/internal/core"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
	"snowbma/internal/victim"
)

// Job kinds accepted by the engine.
const (
	// KindAttack runs the paper-faithful end-to-end attack against a
	// freshly synthesized (or cached) victim.
	KindAttack = "attack"
	// KindCensus runs the catalogue-free census-guided attack variant.
	KindCensus = "census"
	// KindFindLUT synthesizes the victim and runs the FINDLUT batch scan
	// for one Boolean function over its flash image.
	KindFindLUT = "findlut"
	// KindCampaign runs a randomized multi-scenario attack campaign.
	KindCampaign = "campaign"
	// KindCorpus runs a census-at-scale pass over a seeded design corpus
	// through one shared scanner with content-addressed frame dedup.
	KindCorpus = "corpus"
)

// Job states. A job moves queued → running → one of the terminal
// states; Cancel short-circuits a queued job straight to cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// ErrSpec is wrapped by Submit for invalid job specifications.
var ErrSpec = errors.New("service: invalid job spec")

// VictimSpec describes the victim a job synthesizes, mirroring
// victim.Config except that encryption is requested by flag: the
// protection keys derive deterministically from the placement seed
// (victim.DeriveKeys), so a job spec is plain JSON with no key material.
type VictimSpec struct {
	Key             snow3g.Key `json:"key"`
	Protected       bool       `json:"protected,omitempty"`
	AutoProtectBits int        `json:"auto_protect_bits,omitempty"`
	Encrypted       bool       `json:"encrypted,omitempty"`
	PadFrames       int        `json:"pad_frames,omitempty"`
	Seed            int64      `json:"seed,omitempty"`
}

// Config translates the wire spec into a victim build config. Exported
// because the fleet coordinator derives its shard key from the same
// translation (victim.Config.Fingerprint), so routing and execution can
// never disagree about which design a job builds.
func (vs VictimSpec) Config() victim.Config {
	cfg := victim.Config{
		Key:             vs.Key,
		Protected:       vs.Protected,
		AutoProtectBits: vs.AutoProtectBits,
		PadFrames:       vs.PadFrames,
		Seed:            vs.Seed,
	}
	if vs.Encrypted {
		seed := vs.Seed
		if seed == 0 {
			seed = victim.DefaultSeed
		}
		k := victim.DeriveKeys(seed)
		cfg.Encrypt = &k
	}
	return cfg
}

// CampaignSpec parameterizes a campaign job (campaign.Config without
// the telemetry handle, which the engine owns).
type CampaignSpec struct {
	Runs     int   `json:"runs"`
	Parallel int   `json:"parallel,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	Chaos    bool  `json:"chaos,omitempty"`
	Lanes    int   `json:"lanes,omitempty"`
}

// CorpusSpec parameterizes a corpus census job: a seeded design corpus
// (corpus.SeedOptions) plus the census engine knobs. The fleet
// coordinator shards one corpus submission into per-worker Indices
// subsets, so routing and execution derive designs from the same
// (seed, index) pairs.
type CorpusSpec struct {
	// Designs is the corpus size ([0, Designs) unless Indices narrows).
	Designs int `json:"designs"`
	// Seed is the master corpus seed; (Seed, index) fully determines
	// each design.
	Seed int64 `json:"seed,omitempty"`
	// Indices selects an explicit design subset — the fleet's shard unit.
	Indices []int `json:"indices,omitempty"`
	// NoDedup disables the content-addressed frame memo.
	NoDedup bool `json:"no_dedup,omitempty"`
	// Parallel bounds the scan worker pool (0 = all CPUs); Workers the
	// synthesis pipeline (0 = engine default).
	Parallel int `json:"parallel,omitempty"`
	Workers  int `json:"workers,omitempty"`
	// Expr overrides the census target function ("" = the W-XOR target).
	Expr string `json:"expr,omitempty"`
}

// JobSpec is the wire-format job submission.
type JobSpec struct {
	Kind string `json:"kind"`
	// Tenant names the submitting tenant for fair scheduling: weights,
	// quotas and priority classes come from Config.Tenants. Empty is
	// the anonymous tenant, scheduled under the default contract.
	Tenant string `json:"tenant,omitempty"`
	// Victim and IV drive attack, census and findlut jobs.
	Victim VictimSpec `json:"victim,omitempty"`
	IV     snow3g.IV  `json:"iv,omitempty"`
	// Lanes pins the candidate-sweep width (0 = full width).
	Lanes int `json:"lanes,omitempty"`
	// RecomputeCRC makes the attack recompute frame CRCs instead of
	// disabling the check.
	RecomputeCRC bool `json:"recompute_crc,omitempty"`
	// Expr is the findlut search function: paper notation
	// ("(a1^a2^a3)a4a5!a6") or an INIT literal ("64'hFFF7F7FF00080800").
	Expr string `json:"expr,omitempty"`
	// Parallel bounds the findlut scan worker pool (0 = all CPUs).
	Parallel int `json:"parallel,omitempty"`
	// Campaign parameterizes a campaign job.
	Campaign *CampaignSpec `json:"campaign,omitempty"`
	// Corpus parameterizes a corpus census job.
	Corpus *CorpusSpec `json:"corpus,omitempty"`
	// TimeoutMS bounds the job's execution once it starts running;
	// time spent queued does not consume the budget.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Validate checks the spec without executing it. Exported because the
// fleet coordinator's mirror API must reject exactly what the engine
// would reject, with the same wrapped ErrSpec — one validator, one
// error shape on both servers.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindAttack, KindCensus:
	case KindFindLUT:
		if s.Expr == "" {
			return fmt.Errorf("%w: findlut jobs need an expr", ErrSpec)
		}
	case KindCampaign:
		if s.Campaign == nil || s.Campaign.Runs < 1 {
			return fmt.Errorf("%w: campaign jobs need campaign.runs >= 1", ErrSpec)
		}
		if s.Campaign.Lanes != 0 {
			if err := core.ValidateLanes(s.Campaign.Lanes); err != nil {
				return fmt.Errorf("%w: campaign.lanes: %w", ErrSpec, err)
			}
		}
	case KindCorpus:
		c := s.Corpus
		if c == nil {
			return fmt.Errorf("%w: corpus jobs need a corpus spec", ErrSpec)
		}
		if c.Designs < 1 && len(c.Indices) == 0 {
			return fmt.Errorf("%w: corpus jobs need corpus.designs >= 1 or corpus.indices", ErrSpec)
		}
		for _, i := range c.Indices {
			if i < 0 {
				return fmt.Errorf("%w: corpus.indices must be non-negative, got %d", ErrSpec, i)
			}
			if c.Designs > 0 && i >= c.Designs {
				return fmt.Errorf("%w: corpus index %d outside [0, %d)", ErrSpec, i, c.Designs)
			}
		}
		if c.Parallel < 0 || c.Workers < 0 {
			return fmt.Errorf("%w: corpus.parallel and corpus.workers must be non-negative", ErrSpec)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q (want %s|%s|%s|%s|%s)",
			ErrSpec, s.Kind, KindAttack, KindCensus, KindFindLUT, KindCampaign, KindCorpus)
	}
	if s.Lanes != 0 {
		if err := core.ValidateLanes(s.Lanes); err != nil {
			return fmt.Errorf("%w: lanes: %w", ErrSpec, err)
		}
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("%w: timeout_ms must be non-negative, got %d", ErrSpec, s.TimeoutMS)
	}
	if len(s.Tenant) > 64 {
		return fmt.Errorf("%w: tenant name longer than 64 bytes", ErrSpec)
	}
	return nil
}

// AttackResult is the JSON result of an attack or census job.
type AttackResult struct {
	Verified bool            `json:"verified"`
	Key      snow3g.Key      `json:"key"`
	IV       snow3g.IV       `json:"iv"`
	Loads    int             `json:"loads"`
	Batch    core.BatchStats `json:"batch"`
	// Victim synthesis metadata (from the build, possibly cached).
	VictimLUTs  int     `json:"victim_luts"`
	VictimDepth int     `json:"victim_depth"`
	CriticalNs  float64 `json:"critical_path_ns"`
}

// FindResult is the JSON result of a findlut job.
type FindResult struct {
	// Matches are byte offsets of candidate LUTs in the victim's flash.
	Matches []int          `json:"matches"`
	Stats   core.ScanStats `json:"stats"`
}

// Job is one unit of service work. All mutable fields are guarded by
// the engine mutex; done is closed exactly once when the job reaches a
// terminal state.
type job struct {
	id     string
	spec   JobSpec
	state  string
	err    string
	result any
	// recovered marks a job re-enqueued from the durable store after a
	// restart; the flag survives further snapshots so operators can tell
	// replayed work from fresh submissions.
	recovered bool

	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel func()        // cancels ctx
	done   chan struct{} // closed on terminal state
	tel    *obs.Telemetry
}

// Status is the wire-format job status view.
type Status struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	// Recovered marks a job that was re-enqueued from the durable store
	// after an engine restart.
	Recovered bool   `json:"recovered,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// DurationMS is the run time of a finished job.
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// status snapshots the job under the engine mutex.
func (j *job) status() Status {
	st := Status{
		ID:        j.id,
		Kind:      j.spec.Kind,
		Tenant:    j.spec.Tenant,
		State:     j.state,
		Error:     j.err,
		Recovered: j.recovered,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
		if !j.started.IsZero() {
			st.DurationMS = float64(j.finished.Sub(j.started).Nanoseconds()) / 1e6
		}
	}
	return st
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}
