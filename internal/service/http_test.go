package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func httpJSON(t *testing.T, method, url string, body any, out any) (int, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestHTTPLifecycle(t *testing.T) {
	fn, release := gate()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	// Invalid specs are 400.
	var eb errorBody
	if code, _ := httpJSON(t, "POST", srv.URL+"/jobs", JobSpec{Kind: "nope"}, &eb); code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", code)
	}
	if code, _ := httpJSON(t, "POST", srv.URL+"/jobs", map[string]any{"kind": "attack", "bogus": 1}, &eb); code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", code)
	}

	// Submit: 202 with a Location header.
	var st Status
	code, hdr := httpJSON(t, "POST", srv.URL+"/jobs", JobSpec{Kind: KindAttack}, &st)
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit = %d %+v", code, st)
	}
	if loc := hdr.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	waitState(t, e, st.ID, StateRunning)

	// Fill the queue, then overflow: 429 with Retry-After.
	var queued Status
	if code, _ := httpJSON(t, "POST", srv.URL+"/jobs", JobSpec{Kind: KindAttack}, &queued); code != http.StatusAccepted {
		t.Fatalf("queue slot = %d, want 202", code)
	}
	code, hdr = httpJSON(t, "POST", srv.URL+"/jobs", JobSpec{Kind: KindAttack}, &eb)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Status and result endpoints.
	var got Status
	if code, _ := httpJSON(t, "GET", srv.URL+"/jobs/"+st.ID, nil, &got); code != http.StatusOK || got.State != StateRunning {
		t.Fatalf("status = %d %+v", code, got)
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/jobs/job-9999", nil, &eb); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/jobs/"+st.ID+"/result", nil, &eb); code != http.StatusConflict {
		t.Fatalf("result while running = %d, want 409", code)
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/jobs/"+st.ID+"/trace", nil, &eb); code != http.StatusConflict {
		t.Fatalf("trace while running = %d, want 409", code)
	}

	// Cancel the queued job over HTTP.
	var cancelled Status
	if code, _ := httpJSON(t, "DELETE", srv.URL+"/jobs/"+queued.ID, nil, &cancelled); code != http.StatusAccepted || cancelled.State != StateCancelled {
		t.Fatalf("cancel = %d %+v", code, cancelled)
	}

	release()
	waitState(t, e, st.ID, StateDone)
	var res struct {
		Status Status `json:"status"`
		Result any    `json:"result"`
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/jobs/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if res.Status.State != StateDone || res.Result != "ok" {
		t.Fatalf("result body = %+v", res)
	}

	// List shows both accepted jobs in submission order — the 429'd
	// submission was never registered.
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/jobs", nil, &list); code != http.StatusOK || len(list.Jobs) != 2 {
		t.Fatalf("list = %d, %d jobs", code, len(list.Jobs))
	}
	if list.Jobs[0].ID != st.ID {
		t.Fatalf("list order: first is %s, want %s", list.Jobs[0].ID, st.ID)
	}

	// Trace: NDJSON with a meta line and the service.job span.
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) == 0 || !strings.Contains(lines[0], `"meta"`) {
		t.Fatalf("trace does not start with a meta line: %q", lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "service.job") {
		t.Fatal("trace is missing the service.job span")
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	e := newStubEngine(1, 1, instant)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateDone)

	var hz struct {
		Status string `json:"status"`
		Jobs   int    `json:"jobs"`
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/healthz", nil, &hz); code != http.StatusOK || hz.Status != "ok" || hz.Jobs != 1 {
		t.Fatalf("healthz = %d %+v", code, hz)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"service_jobs_submitted_total 1",
		"service_jobs_done_total 1",
		"# TYPE service_workers gauge",
		"service_job_ms_count 1",
		// Duration bucket histograms: queue wait and run time, full
		// Prometheus histogram exposition with a +Inf bucket.
		"# TYPE service_job_queue_wait_ms histogram",
		"# TYPE service_job_run_ms histogram",
		`service_job_queue_wait_ms_bucket{le="+Inf"} 1`,
		`service_job_run_ms_bucket{le="+Inf"} 1`,
		`service_job_run_ms_bucket{le="1"} `,
		"service_job_run_ms_count 1",
		"service_job_queue_wait_ms_count 1",
		// Runtime profiling gauges from the background poller.
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_heap_alloc_bytes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// Draining: healthz flips to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := httpJSON(t, "GET", srv.URL+"/healthz", nil, &hz); code != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Fatalf("healthz during drain = %d %+v", code, hz)
	}
	if code, _ := httpJSON(t, "POST", srv.URL+"/jobs", JobSpec{Kind: KindAttack}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", code)
	}
}

// TestHTTPSubmitErrorShapes pins the contract that every way a submit
// can fail produces the same typed-error shape through httpError: the
// status code matches the error class and the body's error string
// carries the sentinel's prefix, whether the failure happened during
// JSON decoding or during spec validation.
func TestHTTPSubmitErrorShapes(t *testing.T) {
	fn, release := gate()
	defer release()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	cases := []struct {
		name     string
		body     string
		code     int
		sentinel error
	}{
		{"malformed-json", `{"kind": `, http.StatusBadRequest, ErrSpec},
		{"wrong-type", `{"kind": 7}`, http.StatusBadRequest, ErrSpec},
		{"unknown-field", `{"kind": "attack", "bogus": 1}`, http.StatusBadRequest, ErrSpec},
		{"unknown-kind", `{"kind": "nope"}`, http.StatusBadRequest, ErrSpec},
		{"findlut-missing-expr", `{"kind": "findlut"}`, http.StatusBadRequest, ErrSpec},
		{"campaign-missing-runs", `{"kind": "campaign"}`, http.StatusBadRequest, ErrSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.HasPrefix(eb.Error, tc.sentinel.Error()) {
				t.Fatalf("error %q does not carry the %q shape", eb.Error, tc.sentinel.Error())
			}
		})
	}
}
