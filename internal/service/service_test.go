package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"snowbma/internal/core"
	"snowbma/internal/device"
)

// newStubEngine builds an engine whose job bodies run fn instead of
// real attacks, so queue and lifecycle behavior is deterministic.
func newStubEngine(workers, depth int, fn func(ctx context.Context, j *job) (any, error)) *Engine {
	e := New(Config{Workers: workers, QueueDepth: depth})
	e.execFn = fn
	return e
}

// instant is a job body that finishes immediately.
func instant(context.Context, *job) (any, error) { return "ok", nil }

// gate returns a job body that blocks until released (or the job is
// cancelled), plus the release function.
func gate() (func(ctx context.Context, j *job) (any, error), func()) {
	ch := make(chan struct{})
	fn := func(ctx context.Context, j *job) (any, error) {
		select {
		case <-ch:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return fn, func() { close(ch) }
}

func waitState(t *testing.T, e *Engine, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := e.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := e.Get(id)
	t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
	return Status{}
}

func TestSubmitValidation(t *testing.T) {
	e := newStubEngine(1, 1, instant)
	defer e.Shutdown(context.Background())
	bad := []JobSpec{
		{Kind: "exfiltrate"},
		{Kind: KindFindLUT},
		{Kind: KindAttack, Lanes: device.MaxLanes + 1},
		{Kind: KindAttack, Lanes: -1},
		{Kind: KindCampaign},
		{Kind: KindCampaign, Campaign: &CampaignSpec{Runs: 0}},
		{Kind: KindCampaign, Campaign: &CampaignSpec{Runs: 1, Lanes: -2}},
		{Kind: KindAttack, TimeoutMS: -1},
	}
	for _, spec := range bad {
		if _, err := e.Submit(spec); !errors.Is(err, ErrSpec) {
			t.Fatalf("Submit(%+v) = %v, want ErrSpec", spec, err)
		}
	}
	if _, err := e.Submit(JobSpec{Kind: KindAttack, Lanes: device.MaxLanes + 1}); !errors.Is(err, core.ErrLanes) {
		t.Fatal("lane validation must route through core.ValidateLanes (ErrLanes)")
	}
}

func TestQueueBackpressure(t *testing.T) {
	fn, release := gate()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())

	first, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, first.ID, StateRunning)
	second, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatalf("second submit (queue slot free) = %v", err)
	}
	if _, err := e.Submit(JobSpec{Kind: KindAttack}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	release()
	waitState(t, e, first.ID, StateDone)
	waitState(t, e, second.ID, StateDone)
	// Capacity is back: the next submission is accepted.
	third, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatalf("submit after drain = %v", err)
	}
	waitState(t, e, third.ID, StateDone)
}

func TestCancelQueuedJob(t *testing.T) {
	fn, release := gate()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	running, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, StateRunning)
	queued, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job state %q, want %q immediately", st.State, StateCancelled)
	}
	release()
	waitState(t, e, running.ID, StateDone)
	// The worker must skip the cancelled job, not resurrect it.
	if st, _ := e.Get(queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job resurrected into %q", st.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	fn, release := gate()
	defer release()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateRunning)
	if _, err := e.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, e, st.ID, StateCancelled)
	if final.Error == "" {
		t.Fatal("cancelled job carries no error text")
	}
	// Cancelling a finished job stays a no-op.
	again, err := e.Cancel(st.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel = (%+v, %v)", again, err)
	}
}

func TestJobTimeout(t *testing.T) {
	fn, release := gate()
	defer release()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack, TimeoutMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st.ID, StateCancelled)
}

// TimeoutMS bounds execution only: a job may wait in the queue longer
// than its timeout and still run to completion once a worker frees up.
func TestTimeoutExcludesQueueWait(t *testing.T) {
	gateCh := make(chan struct{})
	e := newStubEngine(1, 1, func(ctx context.Context, j *job) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err // started with an already-expired budget
		}
		select {
		case <-gateCh:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	defer e.Shutdown(context.Background())
	blocker, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, blocker.ID, StateRunning)
	short, err := e.Submit(JobSpec{Kind: KindAttack, TimeoutMS: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the job queued well past its nominal timeout, then let the
	// worker go: the budget arms at StateRunning, so it finishes Done.
	time.Sleep(80 * time.Millisecond)
	close(gateCh)
	waitState(t, e, blocker.ID, StateDone)
	waitState(t, e, short.ID, StateDone)
}

func TestTerminalJobsPruned(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 3})
	e.execFn = instant
	defer e.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := e.Submit(JobSpec{Kind: KindAttack})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, e, st.ID, StateDone)
		ids = append(ids, st.ID)
	}
	// The two oldest finished jobs fell out of the retention window...
	for _, id := range ids[:2] {
		if _, err := e.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("pruned job %s still queryable (err=%v)", id, err)
		}
	}
	// ...and the newest three remain listable in submission order.
	list := e.List()
	if len(list) != 3 {
		t.Fatalf("List kept %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[2+i] {
			t.Fatalf("List[%d] = %s, want %s", i, st.ID, ids[2+i])
		}
	}
}

func TestResultLifecycle(t *testing.T) {
	fn, release := gate()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Result(st.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("Result before finish = %v, want ErrNotFinished", err)
	}
	if _, _, err := e.Result("job-9999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Result of unknown job = %v, want ErrNotFound", err)
	}
	release()
	waitState(t, e, st.ID, StateDone)
	v, final, err := e.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v != "ok" || final.State != StateDone {
		t.Fatalf("Result = (%v, %+v)", v, final)
	}
	if final.DurationMS < 0 {
		t.Fatal("negative job duration")
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	e := newStubEngine(1, 1, func(context.Context, *job) (any, error) {
		panic("boom")
	})
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, e, st.ID, StateFailed)
	if final.Error == "" {
		t.Fatal("panicking job recorded no error")
	}
	// The worker survived: the engine still executes jobs.
	st2, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, st2.ID, StateFailed)
}

func TestShutdownDrains(t *testing.T) {
	fn, release := gate()
	e := newStubEngine(2, 4, fn)
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := e.Submit(JobSpec{Kind: KindAttack})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	for _, id := range ids {
		if st, _ := e.Get(id); st.State != StateDone {
			t.Fatalf("job %s ended %q after drain, want done", id, st.State)
		}
	}
	if _, err := e.Submit(JobSpec{Kind: KindAttack}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	fn, release := gate()
	defer release()
	e := newStubEngine(1, 2, fn)
	running, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, StateRunning)
	queued, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, ErrDrainDeadline) {
		t.Fatalf("Shutdown past deadline = %v, want ErrDrainDeadline", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		if st, _ := e.Get(id); st.State != StateCancelled {
			t.Fatalf("job %s ended %q after forced drain, want cancelled", id, st.State)
		}
	}
}

func TestWait(t *testing.T) {
	fn, release := gate()
	e := newStubEngine(1, 1, fn)
	defer e.Shutdown(context.Background())
	st, err := e.Submit(JobSpec{Kind: KindAttack})
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.Wait(short, st.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on blocked job = %v, want deadline", err)
	}
	release()
	final, err := e.Wait(context.Background(), st.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("Wait = (%+v, %v)", final, err)
	}
}
