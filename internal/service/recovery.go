package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"snowbma/internal/obs"
	"snowbma/internal/store"
)

// Durability wiring: every lifecycle transition appends one
// store.Record (persistLocked), recovery replays the log into the job
// table (recover), and compaction folds history back down to one
// record per retained job (compactLocked). All of it is a no-op on a
// store-less engine.

// persistLocked appends the job's current transition to the durable
// store. Called with the engine mutex held, which serializes records
// in true transition order. Queued records carry the full spec (it is
// everything recovery needs to re-run the job); terminal records carry
// the error and the marshaled result.
func (e *Engine) persistLocked(j *job, state string) error {
	if e.cfg.Store == nil {
		return nil
	}
	r := store.Record{
		Job:    j.id,
		State:  state,
		Kind:   j.spec.Kind,
		Tenant: j.spec.Tenant,
		TimeUS: time.Now().UnixMicro(),
	}
	switch state {
	case StateQueued:
		spec, err := json.Marshal(j.spec)
		if err != nil {
			return fmt.Errorf("marshal spec: %w", err)
		}
		r.Spec = spec
		r.Recovered = j.recovered
	case StateDone:
		if j.result != nil {
			res, err := json.Marshal(j.result)
			if err != nil {
				// The result type failed to serialize; persist the
				// terminal state anyway — better a done job with a
				// lost result than a job that re-runs forever.
				e.logf("service: %s result marshal: %v", j.id, err)
			} else {
				r.Result = res
			}
		}
	case StateFailed, StateCancelled:
		r.Error = j.err
	}
	if _, err := e.cfg.Store.Append(r); err != nil {
		return err
	}
	e.storeAppends++
	return nil
}

// recover replays the durable store into the engine: terminal jobs
// come back queryable (status, error, result), incomplete jobs are
// re-enqueued exactly once under their original ids, the id sequence
// resumes past every replayed id, and the log is compacted down to the
// folded snapshot. Runs before the workers start, under no lock (the
// engine is not yet shared).
func (e *Engine) recover() error {
	recs, err := e.cfg.Store.Load()
	if err != nil {
		return fmt.Errorf("service: store load: %w", err)
	}
	folded := store.FoldLatest(recs)
	now := time.Now()
	requeued, restored := 0, 0
	for _, r := range folded {
		if r.Job == "" || r.State == "" {
			continue // defensively skip malformed snapshot rows
		}
		var n int
		if _, serr := fmt.Sscanf(r.Job, "job-%d", &n); serr == nil && n > e.seq {
			e.seq = n
		}
		if _, dup := e.jobs[r.Job]; dup {
			continue // FoldLatest yields unique jobs; belt and braces
		}
		switch r.State {
		case StateDone, StateFailed, StateCancelled:
			e.restoreTerminal(r, now)
			restored++
		case StateQueued, StateRunning:
			if e.requeueRecovered(r, now) {
				requeued++
			}
		}
		// Unknown states (a future version's log) are dropped from the
		// table rather than guessed at; compaction below removes them.
	}
	// Retention applies across restarts too: prune the oldest restored
	// terminal jobs past the cap before compacting, so the log cannot
	// grow without bound through crash loops.
	for len(e.finished) > e.cfg.RetainJobs {
		id := e.finished[0]
		e.finished = e.finished[1:]
		delete(e.jobs, id)
		for i, o := range e.order {
			if o == id {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	}
	if err := e.compactLocked(); err != nil {
		e.logf("service: post-recovery compaction: %v", err)
	}
	e.tel.Counter("service.jobs_recovered").Set(int64(requeued))
	e.bus.Publish(obs.BusEvent{Type: obs.EventService, Name: "recovered",
		Attrs: map[string]any{"requeued": requeued, "restored": restored}})
	if requeued+restored > 0 {
		e.logf("service: recovered %d finished jobs, re-enqueued %d incomplete", restored, requeued)
	}
	return nil
}

// restoreTerminal rebuilds a finished job from its folded record: the
// status, error and result stay queryable exactly as before the
// restart (the result is served back as its stored JSON).
func (e *Engine) restoreTerminal(r store.Record, now time.Time) {
	done := make(chan struct{})
	close(done)
	j := &job{
		id:        r.Job,
		state:     r.State,
		err:       r.Error,
		submitted: microTime(r.TimeUS, now),
		finished:  microTime(r.TimeUS, now),
		cancel:    func() {},
		done:      done,
		tel:       obs.New(),
	}
	if r.Spec != nil {
		// Best effort: the folded record usually carries the original
		// spec, which keeps Kind/Tenant on the status view.
		_ = json.Unmarshal(r.Spec, &j.spec)
	}
	if j.spec.Kind == "" {
		j.spec.Kind = r.Kind
	}
	if j.spec.Tenant == "" {
		j.spec.Tenant = r.Tenant
	}
	if r.Result != nil {
		j.result = json.RawMessage(r.Result)
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.finished = append(e.finished, j.id)
}

// requeueRecovered re-admits a job that was queued or running when the
// previous process died. Quotas and the global depth bound do not
// apply on the way back in (the job was already admitted once); a spec
// that cannot be decoded turns into a failed job rather than silently
// vanishing.
func (e *Engine) requeueRecovered(r store.Record, now time.Time) bool {
	var spec JobSpec
	if r.Spec == nil || json.Unmarshal(r.Spec, &spec) != nil || spec.Validate() != nil {
		done := make(chan struct{})
		close(done)
		j := &job{
			id:        r.Job,
			spec:      JobSpec{Kind: r.Kind, Tenant: r.Tenant},
			state:     StateFailed,
			err:       "recovery: job spec lost or corrupt in store",
			submitted: microTime(r.TimeUS, now),
			finished:  now,
			cancel:    func() {},
			done:      done,
			tel:       obs.New(),
		}
		e.jobs[j.id] = j
		e.order = append(e.order, j.id)
		e.finished = append(e.finished, j.id)
		e.tel.Counter("service.jobs_recovery_failed").Inc()
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        r.Job,
		spec:      spec,
		state:     StateQueued,
		submitted: now, // queue-wait accounting restarts at recovery
		recovered: true,
		cancel:    cancel,
		done:      make(chan struct{}),
		tel:       obs.New(),
	}
	j.ctx = ctx
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	j.tel.AttachBus(e.bus, j.id)
	e.sched.pushRecovered(j)
	e.publishJob(j, StateQueued, obs.KV("kind", spec.Kind), obs.KV("recovered", true))
	return true
}

// snapshotLocked folds the in-memory job table into one record per
// job — exactly what a restarted engine needs. Incomplete (queued or
// running) jobs keep their spec; terminal jobs their error/result.
func (e *Engine) snapshotLocked() []store.Record {
	snap := make([]store.Record, 0, len(e.order))
	for _, id := range e.order {
		j := e.jobs[id]
		r := store.Record{
			Job:    j.id,
			State:  j.state,
			Kind:   j.spec.Kind,
			Tenant: j.spec.Tenant,
			TimeUS: j.submitted.UnixMicro(),
		}
		switch j.state {
		case StateDone:
			if j.result != nil {
				if res, err := json.Marshal(j.result); err == nil {
					r.Result = res
				}
			}
		case StateFailed, StateCancelled:
			r.Error = j.err
		default: // queued or running: keep everything needed to re-run
			if spec, err := json.Marshal(j.spec); err == nil {
				r.Spec = spec
			}
			r.Recovered = j.recovered
		}
		snap = append(snap, r)
	}
	return snap
}

// compactLocked rewrites the store to the current snapshot.
func (e *Engine) compactLocked() error {
	if e.cfg.Store == nil {
		return nil
	}
	if err := e.cfg.Store.Compact(e.snapshotLocked()); err != nil {
		return err
	}
	e.storeAppends = 0
	e.tel.Counter("service.store_compactions").Inc()
	return nil
}

// compactEvery is the append-count threshold behind automatic runtime
// compaction (checked as terminal jobs are pruned).
const compactEvery = 1024

// maybeCompactLocked compacts once appended history clearly outgrows
// the live table: a long-running durable engine's log stays
// O(retained jobs), not O(every job ever).
func (e *Engine) maybeCompactLocked() {
	if e.cfg.Store == nil {
		return
	}
	if e.storeAppends >= compactEvery && e.storeAppends > 4*len(e.jobs) {
		if err := e.compactLocked(); err != nil {
			e.tel.Counter("service.store_errors").Inc()
			e.logf("service: compaction failed: %v", err)
		}
	}
}

// microTime converts a stored microsecond timestamp, falling back to
// the recovery time for records that never carried one.
func microTime(us int64, fallback time.Time) time.Time {
	if us > 0 {
		return time.UnixMicro(us)
	}
	return fallback
}
