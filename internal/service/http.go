package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"snowbma/internal/obs"
)

// Handler returns the engine's HTTP API:
//
//	POST   /jobs            submit a JobSpec → 202 Status
//	                        (400 invalid spec, 429 queue full or tenant
//	                        over quota, 503 shutting down)
//	GET    /jobs            list job statuses
//	GET    /jobs/{id}       one job's status
//	GET    /jobs/{id}/result terminal job's result (409 while queued/running)
//	GET    /jobs/{id}/trace  terminal job's NDJSON telemetry trace
//	DELETE /jobs/{id}       cancel (idempotent; 202 with the new status)
//	GET    /jobs/{id}/events one job's live SSE event stream (replays the
//	                        ring from the start of the job, then follows
//	                        live until the job goes terminal)
//	GET    /events          firehose SSE stream of every bus event
//	                        (live-only unless Last-Event-ID resumes)
//	GET    /healthz         liveness + queue occupancy (503 when draining)
//	GET    /metrics         Prometheus text format (engine + process registries)
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", e.handleSubmit)
	mux.HandleFunc("GET /jobs", e.handleList)
	mux.HandleFunc("GET /jobs/{id}", e.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", e.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", e.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/events", e.handleJobEvents)
	mux.HandleFunc("DELETE /jobs/{id}", e.handleCancel)
	mux.HandleFunc("GET /events", e.handleEvents)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

type errorBody struct {
	Error string `json:"error"`
}

// httpError maps the engine's typed errors onto status codes.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrQuotaExceeded):
		// Same 429 as a full queue, but the body names the tenant's
		// quota so clients can tell "service busy" from "over my share".
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		code = http.StatusConflict
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// Route decode failures through the same typed-error path as
		// validation failures: clients (and errors.Is in tests) see one
		// ErrSpec shape for every malformed spec, not a hand-rolled body.
		httpError(w, fmt.Errorf("%w: %v", ErrSpec, err))
		return
	}
	st, err := e.Submit(spec)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (e *Engine) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: e.List()})
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := e.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (e *Engine) handleResult(w http.ResponseWriter, r *http.Request) {
	result, st, err := e.Result(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status Status `json:"status"`
		Result any    `json:"result,omitempty"`
	}{Status: st, Result: result})
}

func (e *Engine) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Probe the job first so errors are JSON, not half-written NDJSON.
	e.mu.Lock()
	j, ok := e.jobs[id]
	terminal := ok && j.terminal()
	e.mu.Unlock()
	if !ok {
		httpError(w, ErrNotFound)
		return
	}
	if !terminal {
		httpError(w, ErrNotFinished)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition", "attachment; filename=\""+id+".ndjson\"")
	e.WriteTrace(w, id) //nolint:errcheck // headers are committed; nothing to signal
}

func (e *Engine) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := e.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	e.mu.Lock()
	queued := e.queuedLocked()
	running := 0
	for _, j := range e.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	total := len(e.jobs)
	closed := e.closed
	e.mu.Unlock()
	hits, misses, evictions := e.CacheStats()
	body := struct {
		Status  string `json:"status"`
		Queued  int    `json:"queued"`
		Running int    `json:"running"`
		Jobs    int    `json:"jobs"`
		Cache   struct {
			Hits      int `json:"hits"`
			Misses    int `json:"misses"`
			Evictions int `json:"evictions"`
		} `json:"victim_cache"`
	}{Status: "ok", Queued: queued, Running: running, Jobs: total}
	body.Cache.Hits, body.Cache.Misses, body.Cache.Evictions = hits, misses, evictions
	code := http.StatusOK
	if closed {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (e *Engine) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteMetricsText(w, e.tel.Metrics, obs.Default()) //nolint:errcheck
}

// terminalStateName reports whether a job-event name is a terminal
// lifecycle state.
func terminalStateName(name string) bool {
	switch name {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// handleEvents is the firehose: every bus event, live-only by default
// (a reconnecting client resumes from its Last-Event-ID). The stream
// runs until the client disconnects or the engine shuts down.
func (e *Engine) handleEvents(w http.ResponseWriter, r *http.Request) {
	e.serveSSE(w, r, obs.SSEOptions{After: obs.SSEFromNow})
}

// handleJobEvents streams one job's events: ring replay from the start
// of the job (so a mid-job subscriber catches up), then live until the
// terminal job event. For a job whose terminal event has already been
// evicted from the ring, a synthetic terminal event closes the stream
// instead of leaving the client waiting on history that will never
// replay.
func (e *Engine) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := e.Get(id); err != nil {
		httpError(w, err)
		return
	}
	e.serveSSE(w, r, obs.SSEOptions{
		Filter: func(ev obs.BusEvent) bool { return ev.Job == id },
		Done: func(ev obs.BusEvent) bool {
			return ev.Type == obs.EventJob && terminalStateName(ev.Name)
		},
		Epilogue: func() *obs.BusEvent {
			st, err := e.Get(id)
			if err != nil || !terminalStateName(st.State) {
				return nil // still live (or pruned): follow the bus
			}
			ev := obs.BusEvent{Type: obs.EventJob, Job: id, Name: st.State}
			if st.Error != "" {
				ev.Attrs = map[string]any{"error": st.Error}
			}
			return &ev
		},
	})
}

func (e *Engine) serveSSE(w http.ResponseWriter, r *http.Request, opt obs.SSEOptions) {
	opt.Heartbeat = e.cfg.Heartbeat
	e.tel.Counter("service.sse_streams").Inc()
	obs.ServeSSE(w, r, e.bus, opt) //nolint:errcheck // stream is committed; nothing to signal
}
