package service

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQuotaExceeded is the per-tenant backpressure signal: the tenant is
// barred outright (Weight 0) or its queued-job quota is full. It is
// deliberately distinct from ErrQueueFull (the global queue bound) so a
// client can tell "the service is busy" from "your tenant is over its
// share" — HTTP maps both onto 429 but with different bodies.
var ErrQuotaExceeded = errors.New("service: tenant quota exceeded")

// TenantConfig is one tenant's scheduling contract.
type TenantConfig struct {
	// Weight is the tenant's share of worker dispatch under contention:
	// a weight-10 tenant is dispatched ten jobs for every one of a
	// weight-1 tenant while both have work queued. Weight 0 bars the
	// tenant entirely (Submit fails with ErrQuotaExceeded) — an
	// explicit off switch, not silent starvation.
	Weight int `json:"weight"`
	// MaxQueued caps how many of the tenant's jobs may sit in the
	// queue at once (0 = no per-tenant cap; the global QueueDepth
	// still applies). The cap counts queued jobs only, not running
	// ones.
	MaxQueued int `json:"max_queued,omitempty"`
	// Priority is the tenant's dispatch class: any queued job of a
	// higher class is dispatched before every job of a lower class,
	// regardless of weights (weights arbitrate within a class).
	Priority int `json:"priority,omitempty"`
}

// DefaultTenantConfig is the contract applied to tenants absent from
// Config.Tenants when no Config.DefaultTenant override is given.
var DefaultTenantConfig = TenantConfig{Weight: 1}

// tenantQ is one tenant's FIFO plus its stride-scheduling state.
type tenantQ struct {
	name string
	cfg  TenantConfig
	jobs []*job
	// pass is the tenant's virtual time: it advances by 1/Weight per
	// dispatched job, so under contention each tenant's dispatch count
	// is proportional to its weight. New (or newly busy) tenants join
	// at the scheduler's current virtual time rather than at zero, so
	// an idle tenant cannot bank credit and then monopolize the pool.
	pass float64
}

// sched is the multi-tenant fair queue that replaces the single global
// FIFO channel: per-tenant FIFOs, weighted stride dispatch within a
// priority class, strict ordering across classes, per-tenant quotas and
// the global depth bound. Workers block in pop until work arrives or
// the scheduler closes and drains.
type sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	size   int
	closed bool
	queues map[string]*tenantQ
	order  []string // tenant registration order, for deterministic ties
	vtime  float64  // pass of the most recent dispatch
	lookup func(tenant string) TenantConfig
}

func newSched(capacity int, lookup func(string) TenantConfig) *sched {
	s := &sched{cap: capacity, queues: map[string]*tenantQ{}, lookup: lookup}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tenantLocked returns (creating if needed) the tenant's queue with its
// contract refreshed from the engine config.
func (s *sched) tenantLocked(name string) *tenantQ {
	q, ok := s.queues[name]
	if !ok {
		q = &tenantQ{name: name, pass: s.vtime}
		s.queues[name] = q
		s.order = append(s.order, name)
	}
	q.cfg = s.lookup(name)
	return q
}

// push enqueues a job, enforcing the tenant's quota and the global
// bound. Typed failures: ErrQuotaExceeded (weight 0 or per-tenant cap),
// ErrQueueFull (global capacity).
func (s *sched) push(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.tenantLocked(j.spec.Tenant)
	if q.cfg.Weight <= 0 {
		return fmt.Errorf("%w: tenant %q has zero weight", ErrQuotaExceeded, j.spec.Tenant)
	}
	if q.cfg.MaxQueued > 0 && len(q.jobs) >= q.cfg.MaxQueued {
		return fmt.Errorf("%w: tenant %q already has %d jobs queued (cap %d)",
			ErrQuotaExceeded, j.spec.Tenant, len(q.jobs), q.cfg.MaxQueued)
	}
	if s.size >= s.cap {
		return fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cap)
	}
	q.jobs = append(q.jobs, j)
	s.size++
	s.cond.Signal()
	return nil
}

// pushRecovered re-admits a job replayed from the durable store. Jobs
// that were accepted before a crash are never bounced by quotas or the
// global bound on the way back in — recovery must not lose work — so
// only the weight-0 bar is impossible to land on (those jobs could not
// have been admitted in the first place; if the config changed across
// the restart, the job is still re-admitted and simply scheduled at
// weight 1).
func (s *sched) pushRecovered(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.tenantLocked(j.spec.Tenant)
	q.jobs = append(q.jobs, j)
	s.size++
	s.cond.Signal()
}

// pop blocks until a job is available (dispatching the fairest pick) or
// the scheduler is closed and fully drained (ok=false).
func (s *sched) pop() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q := s.pickLocked(); q != nil {
			j := q.jobs[0]
			copy(q.jobs, q.jobs[1:])
			q.jobs[len(q.jobs)-1] = nil // release the dispatched job
			q.jobs = q.jobs[:len(q.jobs)-1]
			s.size--
			weight := q.cfg.Weight
			if weight <= 0 {
				weight = 1 // recovered job of a since-barred tenant
			}
			q.pass += 1.0 / float64(weight)
			s.vtime = q.pass
			return j, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// pickLocked selects the tenant to dispatch from: the highest priority
// class with queued work, then the lowest pass within it (registration
// order breaks exact ties). Returns nil when nothing is queued.
func (s *sched) pickLocked() *tenantQ {
	var best *tenantQ
	for _, name := range s.order {
		q := s.queues[name]
		if len(q.jobs) == 0 {
			continue
		}
		if best == nil ||
			q.cfg.Priority > best.cfg.Priority ||
			(q.cfg.Priority == best.cfg.Priority && q.pass < best.pass) {
			best = q
		}
	}
	return best
}

// len reports the number of queued jobs.
func (s *sched) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// close stops admission-side signaling: workers drain what is queued
// and then pop returns ok=false.
func (s *sched) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
