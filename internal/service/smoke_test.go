package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"snowbma/internal/snow3g"
)

var (
	smokeKey = snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	smokeIVs = []snow3g.IV{
		{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F},
		{0x72A4F20F, 0x48C63BD2, 0x13DBAF0E, 0x9E1F3C7A},
		{0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210},
	}
)

func postJob(t *testing.T, url string, spec JobSpec) (Status, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(spec); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func pollTerminal(t *testing.T, url, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return Status{}
}

// TestServeSmoke is the end-to-end serving exercise the Makefile's
// serve-smoke target runs under -race: concurrent attack jobs over
// HTTP recover correct keys (sharing one cached victim build),
// queue-full submissions get a typed 429, a running campaign job is
// cancelled mid-flight, and shutdown drains the rest.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test is minutes-scale under -race")
	}
	before := runtime.NumGoroutine()
	e := New(Config{Workers: 2, QueueDepth: 2})
	srv := httptest.NewServer(e.Handler())

	// Phase 1: three concurrent attack jobs against the same victim
	// design (one synthesis, cache-served) with distinct IVs.
	var ids []string
	for _, iv := range smokeIVs {
		st, code := postJob(t, srv.URL, JobSpec{
			Kind:   KindAttack,
			Victim: VictimSpec{Key: smokeKey},
			IV:     iv,
		})
		if code == http.StatusTooManyRequests {
			// Bounded queue with 2 workers: wait for capacity.
			for code == http.StatusTooManyRequests {
				time.Sleep(50 * time.Millisecond)
				st, code = postJob(t, srv.URL, JobSpec{
					Kind:   KindAttack,
					Victim: VictimSpec{Key: smokeKey},
					IV:     iv,
				})
			}
		}
		if code != http.StatusAccepted {
			t.Fatalf("attack submit = %d", code)
		}
		ids = append(ids, st.ID)
	}
	for i, id := range ids {
		final := pollTerminal(t, srv.URL, id, 5*time.Minute)
		if final.State != StateDone {
			t.Fatalf("attack job %s ended %s: %s", id, final.State, final.Error)
		}
		resp, err := http.Get(srv.URL + "/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Result AttackResult `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !body.Result.Verified || body.Result.Key != smokeKey || body.Result.IV != smokeIVs[i] {
			t.Fatalf("job %s recovered key %08x iv %08x (verified=%v), want %08x %08x",
				id, body.Result.Key, body.Result.IV, body.Result.Verified, smokeKey, smokeIVs[i])
		}
		if body.Result.Loads == 0 {
			t.Fatalf("job %s reports zero loads", id)
		}
	}
	if hits, misses, _ := e.CacheStats(); misses != 1 || hits != 2 {
		t.Fatalf("victim cache hits=%d misses=%d, want 2/1 (one synthesis, two reuses)", hits, misses)
	}

	// Phase 2: occupy both workers with campaign jobs, fill the queue,
	// and observe typed backpressure on the overflow submission.
	campaignSpec := JobSpec{
		Kind:     KindCampaign,
		Campaign: &CampaignSpec{Runs: 8, Parallel: 1, Seed: 42},
	}
	camp1, code := postJob(t, srv.URL, campaignSpec)
	if code != http.StatusAccepted {
		t.Fatalf("campaign 1 submit = %d", code)
	}
	camp2, code := postJob(t, srv.URL, campaignSpec)
	if code != http.StatusAccepted {
		t.Fatalf("campaign 2 submit = %d", code)
	}
	// Wait for both to be running so queue occupancy is deterministic.
	for _, id := range []string{camp1.ID, camp2.ID} {
		deadline := time.Now().Add(time.Minute)
		for {
			st, err := e.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == StateRunning {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s never started", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fill1, code := postJob(t, srv.URL, campaignSpec)
	if code != http.StatusAccepted {
		t.Fatalf("queue fill 1 = %d", code)
	}
	fill2, code := postJob(t, srv.URL, campaignSpec)
	if code != http.StatusAccepted {
		t.Fatalf("queue fill 2 = %d", code)
	}
	if _, code := postJob(t, srv.URL, campaignSpec); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", code)
	}

	// Phase 3: cancel one running campaign and both queued fills over
	// HTTP; the running one must stop well before a full campaign run.
	for _, id := range []string{camp1.ID, fill1.ID, fill2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s = %d", id, resp.StatusCode)
		}
	}
	if st := pollTerminal(t, srv.URL, camp1.ID, time.Minute); st.State != StateCancelled {
		t.Fatalf("cancelled campaign ended %s: %s", st.State, st.Error)
	}

	// Phase 4: graceful shutdown drains the surviving campaign.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if st, _ := e.Get(camp2.ID); st.State != StateDone {
		t.Fatalf("campaign 2 ended %s after drain: %s", st.State, st.Error)
	}
	srv.Close()

	// No leaked worker or job goroutines (allow slack for the runtime's
	// own pool and httptest teardown).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestServiceFindLUTAndCensusJobs covers the two remaining job kinds
// end to end (engine API, no HTTP round-trip).
func TestServiceFindLUTAndCensusJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes victims")
	}
	e := New(Config{Workers: 2, QueueDepth: 4})
	defer e.Shutdown(context.Background())

	find, err := e.Submit(JobSpec{
		Kind:   KindFindLUT,
		Victim: VictimSpec{Key: smokeKey},
		Expr:   "(a1^a2^a3)a4a5!a6",
	})
	if err != nil {
		t.Fatal(err)
	}
	census, err := e.Submit(JobSpec{
		Kind:   KindCensus,
		Victim: VictimSpec{Key: smokeKey},
		IV:     smokeIVs[0],
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if st, err := e.Wait(ctx, find.ID); err != nil || st.State != StateDone {
		t.Fatalf("findlut job: %+v %v", st, err)
	}
	v, _, err := e.Result(find.ID)
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := v.(*FindResult)
	if !ok {
		t.Fatalf("findlut result type %T", v)
	}
	// The z-path function appears in exactly 32+3 candidate positions on
	// the unprotected paper design (32 targets + 3 false positives);
	// at minimum the 32 targets must be there.
	if len(fr.Matches) < 32 {
		t.Fatalf("findlut found %d matches, want >= 32", len(fr.Matches))
	}
	if fr.Stats.CandidatesCompiled == 0 || fr.Stats.BytesScanned == 0 {
		t.Fatal("findlut reported empty scan stats")
	}

	if st, err := e.Wait(ctx, census.ID); err != nil || st.State != StateDone {
		t.Fatalf("census job: %+v %v", st, err)
	}
	cv, _, err := e.Result(census.ID)
	if err != nil {
		t.Fatal(err)
	}
	ar, ok := cv.(*AttackResult)
	if !ok {
		t.Fatalf("census result type %T", cv)
	}
	if !ar.Verified || ar.Key != smokeKey {
		t.Fatalf("census attack recovered %08x (verified=%v)", ar.Key, ar.Verified)
	}
}

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the
// engine: full attack jobs against a cache-warm victim on a saturated
// worker pool.
func BenchmarkServiceThroughput(b *testing.B) {
	e := New(Config{Workers: runtime.NumCPU(), QueueDepth: 64})
	defer e.Shutdown(context.Background())
	spec := JobSpec{Kind: KindAttack, Victim: VictimSpec{Key: smokeKey}, IV: smokeIVs[0]}
	// Warm the victim cache so the benchmark measures serving, not
	// one-off synthesis.
	st, err := e.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if st, err = e.Wait(context.Background(), st.ID); err != nil || st.State != StateDone {
		b.Fatalf("warmup job: %+v %v", st, err)
	}
	b.ResetTimer()
	ids := make([]string, 0, b.N)
	for i := 0; i < b.N; i++ {
		for {
			st, err := e.Submit(spec)
			if errors.Is(err, ErrQueueFull) {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, st.ID)
			break
		}
	}
	for _, id := range ids {
		st, err := e.Wait(context.Background(), id)
		if err != nil || st.State != StateDone {
			b.Fatalf("job %s: %+v %v", id, st, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}
