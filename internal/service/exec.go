package service

import (
	"context"
	"fmt"

	"snowbma/internal/boolfn"
	"snowbma/internal/campaign"
	"snowbma/internal/core"
	"snowbma/internal/corpus"
	"snowbma/internal/victim"
)

// exec runs one job body under the job's context. It is the default
// Engine.execFn.
func (e *Engine) exec(ctx context.Context, j *job) (any, error) {
	switch j.spec.Kind {
	case KindAttack, KindCensus:
		return e.execAttack(ctx, j)
	case KindFindLUT:
		return e.execFindLUT(ctx, j)
	case KindCampaign:
		return e.execCampaign(ctx, j)
	case KindCorpus:
		return e.execCorpus(ctx, j)
	}
	return nil, fmt.Errorf("%w: unknown kind %q", ErrSpec, j.spec.Kind)
}

// buildVictim synthesizes (or re-programs from cache) the job's victim,
// honoring cancellation around the expensive synthesis step.
func (e *Engine) buildVictim(ctx context.Context, j *job) (*victim.Victim, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrCancelled, err)
	}
	v, err := e.cache.Build(j.spec.Victim.Config())
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (e *Engine) execAttack(ctx context.Context, j *job) (any, error) {
	v, err := e.buildVictim(ctx, j)
	if err != nil {
		return nil, err
	}
	atk, err := core.NewAttackCRCMode(v.Device, j.spec.IV, nil, j.spec.RecomputeCRC)
	if err != nil {
		return nil, err
	}
	lanes := j.spec.Lanes
	if lanes == 0 {
		lanes = core.DefaultLanes
	}
	if err := atk.SetLanes(lanes); err != nil {
		return nil, err
	}
	atk.SetTelemetry(j.tel)
	atk.SetContext(ctx)
	var rep *core.Report
	if j.spec.Kind == KindCensus {
		rep, err = atk.RunCensusGuided()
	} else {
		rep, err = atk.Run()
	}
	if err != nil {
		return nil, err
	}
	return &AttackResult{
		Verified:    rep.Verified,
		Key:         rep.Key,
		IV:          rep.IV,
		Loads:       rep.Loads,
		Batch:       rep.Batch,
		VictimLUTs:  v.LUTs,
		VictimDepth: v.Depth,
		CriticalNs:  v.CriticalPathNs,
	}, nil
}

func (e *Engine) execFindLUT(ctx context.Context, j *job) (any, error) {
	f, err := boolfn.ParseAuto(j.spec.Expr)
	if err != nil {
		return nil, fmt.Errorf("%w: expr: %v", ErrSpec, err)
	}
	v, err := e.buildVictim(ctx, j)
	if err != nil {
		return nil, err
	}
	// The scan engine has no internal checkpoints; one pass over the
	// flash image is bounded (tens of milliseconds), so cancellation is
	// honored at the pass boundary.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrCancelled, cerr)
	}
	s := core.NewScanner(core.FindOptions{Parallel: j.spec.Parallel})
	s.SetTelemetry(j.tel)
	s.AddFunction("f", f)
	res := s.Scan(v.Device.ReadFlash())
	matches := res.Matches["f"]
	out := make([]int, len(matches))
	for i, m := range matches {
		out[i] = m.Index
	}
	return &FindResult{Matches: out, Stats: res.Stats}, nil
}

func (e *Engine) execCampaign(ctx context.Context, j *job) (any, error) {
	cs := j.spec.Campaign
	rep, err := campaign.RunContext(ctx, campaign.Config{
		Runs:     cs.Runs,
		Parallel: cs.Parallel,
		Seed:     cs.Seed,
		Chaos:    cs.Chaos,
		Lanes:    cs.Lanes,
		Tel:      j.tel,
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func (e *Engine) execCorpus(ctx context.Context, j *job) (any, error) {
	cs := j.spec.Corpus
	cen, err := corpus.New(corpus.Options{
		NoDedup:  cs.NoDedup,
		Parallel: cs.Parallel,
		Expr:     cs.Expr,
		Tel:      j.tel,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	src := corpus.NewSeeded(corpus.SeedOptions{
		Designs: cs.Designs,
		Seed:    cs.Seed,
		Indices: cs.Indices,
		Workers: cs.Workers,
	})
	return cen.Run(ctx, src)
}
