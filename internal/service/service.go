// Package service is the attack-as-a-service job engine: long-running
// attack work (full attacks, census attacks, FINDLUT scans, randomized
// campaigns) submitted as jobs onto a bounded worker pool with a
// bounded queue, with per-job cancellation, NDJSON trace capture, and a
// graceful shutdown that drains in-flight work against a deadline.
//
// Backpressure is typed, never buffered away: when the queue is full,
// Submit fails immediately with ErrQueueFull (HTTP 429 at the API
// layer) — the engine holds at most QueueDepth queued jobs plus Workers
// running ones, whatever the submission rate.
//
// Victim synthesis is the dominant per-job cost for repeated specs, so
// the engine builds victims through a victim.Cache: identical victim
// configs synthesize once and every job programs its own fresh device
// from the cached image (no shared fabric state between jobs).
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"snowbma/internal/core"
	"snowbma/internal/obs"
	"snowbma/internal/store"
	"snowbma/internal/victim"
)

// Typed submission and lifecycle errors.
var (
	// ErrQueueFull: the bounded queue is at capacity; retry later.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown: the engine no longer accepts jobs.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrNotFound: no job with that id.
	ErrNotFound = errors.New("service: job not found")
	// ErrNotFinished: the job has not reached a terminal state yet.
	ErrNotFinished = errors.New("service: job not finished")
	// ErrDrainDeadline: shutdown hit its deadline and had to cancel
	// in-flight jobs instead of letting them finish.
	ErrDrainDeadline = errors.New("service: shutdown deadline exceeded, in-flight jobs cancelled")
)

// DefaultRetainJobs is the finished-job retention cap a
// zero-configured Engine uses; without it a long-running server would
// accumulate every result and trace ever produced.
const DefaultRetainJobs = 256

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds the number of concurrently running jobs
	// (0 = NumCPU, capped at 4 — attack jobs are CPU-heavy).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (0 = 16). Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// RetainJobs bounds how many finished jobs (results, errors,
	// telemetry traces) stay queryable (0 = DefaultRetainJobs). When a
	// job reaches a terminal state and the cap is exceeded, the
	// oldest-finished jobs are pruned; their status/result/trace
	// lookups then return ErrNotFound.
	RetainJobs int
	// CacheSize bounds the victim build cache (0 = victim.DefaultCacheSize).
	CacheSize int
	// EventBuffer bounds the live event bus ring (0 = obs.DefaultEventBuffer).
	EventBuffer int
	// FlushInterval is the cadence at which counter/gauge changes stream
	// onto the event bus (0 = obs.DefaultFlushInterval).
	FlushInterval time.Duration
	// Heartbeat is the SSE keep-alive cadence (0 = obs.DefaultHeartbeat).
	Heartbeat time.Duration
	// RuntimePoll is the runtime-profiling sample cadence
	// (0 = obs.DefaultRuntimePoll).
	RuntimePoll time.Duration
	// Store, when non-nil, makes the engine durable: every job
	// lifecycle transition is appended to it, and Open replays it on
	// startup — finished jobs stay queryable, incomplete jobs are
	// re-enqueued. The engine owns the store from Open on and closes
	// it during Shutdown. Engines with a Store must be built with
	// Open, not New.
	Store store.JobStore
	// Tenants maps tenant names to their scheduling contracts
	// (weights, quotas, priority classes). Tenants not listed get
	// DefaultTenant (or DefaultTenantConfig when that is nil too).
	Tenants map[string]TenantConfig
	// DefaultTenant overrides the contract applied to unlisted
	// tenants, including the anonymous "" tenant.
	DefaultTenant *TenantConfig
	// RigLatency models the per-job occupancy of one physical attack
	// rig (bitstream programming + keystream capture on real hardware
	// is device-bound, not CPU-bound). When nonzero, every job holds a
	// worker slot for at least this long; fleet capacity benchmarks
	// use it to measure scheduling overlap the way a hardware fleet
	// would. 0 (the default) disables it.
	RigLatency time.Duration
	// Tel receives engine-level metrics and spans (nil = fresh handle).
	Tel *obs.Telemetry
	// Logf receives human-readable engine logs (nil = silent).
	Logf func(string, ...any)

	// execOverride substitutes the job body before workers start —
	// the in-package recovery and fairness tests need it installed
	// before the first recovered job can be dispatched.
	execOverride func(ctx context.Context, j *job) (any, error)
}

// tenantConfig resolves one tenant's scheduling contract.
func (cfg Config) tenantConfig(tenant string) TenantConfig {
	if tc, ok := cfg.Tenants[tenant]; ok {
		return tc
	}
	if cfg.DefaultTenant != nil {
		return *cfg.DefaultTenant
	}
	return DefaultTenantConfig
}

// Engine is the job engine. Create with New, stop with Shutdown.
type Engine struct {
	cfg   Config
	tel   *obs.Telemetry
	logf  func(string, ...any)
	cache *victim.Cache

	// Live observability plane: every job lifecycle transition, span and
	// flushed metric lands on bus; SSE endpoints subscribe to it. The
	// background pollers (engine metric flusher, runtime profiler) stop
	// and the bus closes when Shutdown's drain completes.
	bus         *obs.EventBus
	stopFlush   func()
	stopRuntime func()
	obsOnce     sync.Once

	sched *sched
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	finished []string // terminal job ids, oldest first, for pruning
	seq      int
	closed   bool
	// storeAppends counts records written since the last compaction;
	// maybeCompactLocked folds the log back down when history outgrows
	// the live job table.
	storeAppends int

	// execFn runs one job body; tests substitute it to make queue and
	// lifecycle behavior deterministic without synthesizing victims.
	execFn func(ctx context.Context, j *job) (any, error)
}

// New starts a non-durable engine: Workers goroutines consuming a
// QueueDepth-deep fair queue. Engines with a Config.Store must be
// built with Open instead (New panics if recovery fails, since it has
// no error to return).
func New(cfg Config) *Engine {
	e, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("service.New with a store: %v (use service.Open)", err))
	}
	return e
}

// Open starts an engine. When cfg.Store is set, the store's record log
// is replayed first: finished jobs come back queryable, incomplete
// (queued or running at crash time) jobs are re-enqueued exactly once
// under their original ids, and the log is compacted to the folded
// snapshot. Workers start only after recovery completes, so a replayed
// job can never race its own re-admission.
func Open(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = min(runtime.NumCPU(), 4)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = victim.DefaultCacheSize
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = DefaultRetainJobs
	}
	tel := cfg.Tel
	if tel == nil {
		tel = obs.New()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e := &Engine{
		cfg:   cfg,
		tel:   tel,
		logf:  logf,
		cache: victim.NewCache(cfg.CacheSize),
		jobs:  map[string]*job{},
	}
	e.sched = newSched(cfg.QueueDepth, cfg.tenantConfig)
	e.cache.Tel = tel
	e.execFn = e.exec
	if cfg.execOverride != nil {
		e.execFn = cfg.execOverride
	}
	tel.Gauge("service.workers").Set(float64(cfg.Workers))
	tel.Gauge("service.queue_depth").Set(float64(cfg.QueueDepth))
	// Pre-register the duration histograms so their (empty) families show
	// up on the very first /metrics scrape.
	tel.BucketHistogram("service.job_queue_wait_ms", obs.DurationBucketsMS)
	tel.BucketHistogram("service.job_run_ms", obs.DurationBucketsMS)

	e.bus = obs.NewEventBus(cfg.EventBuffer)
	e.stopFlush = obs.NewMetricsStreamer(tel.Metrics, e.bus, "").Start(cfg.FlushInterval)
	e.stopRuntime = obs.StartRuntimeMetrics(tel.Metrics, cfg.RuntimePoll, e.sampleEngineGauges)

	if cfg.Store != nil {
		if err := e.recover(); err != nil {
			e.closeObs()
			return nil, err
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// sampleEngineGauges folds app-level gauges that need active sampling
// into the runtime poller's cadence: queue occupancy, victim-cache
// size/hit counters and the bus-wide event drop total.
func (e *Engine) sampleEngineGauges(reg *obs.Registry) {
	e.mu.Lock()
	queued := e.queuedLocked()
	e.mu.Unlock()
	reg.Gauge("service.jobs_queued").Set(float64(queued))
	// Hit/miss/eviction counters stream live from the cache itself
	// (victim.cache.*); only the current size needs polling.
	reg.Gauge("victim.cache.size").Set(float64(e.cache.Len()))
	reg.Counter("obs.events_dropped").Set(e.bus.Dropped())
}

// Bus exposes the live event bus (SSE endpoints and in-process
// dashboards subscribe to it).
func (e *Engine) Bus() *obs.EventBus { return e.bus }

// publishJob emits a job lifecycle transition onto the event bus.
func (e *Engine) publishJob(j *job, state string, attrs ...obs.Attr) {
	ev := obs.BusEvent{Type: obs.EventJob, Job: j.id, Name: state}
	for _, a := range attrs {
		if ev.Attrs == nil {
			ev.Attrs = map[string]any{}
		}
		ev.Attrs[a.Key] = a.Value
	}
	e.bus.Publish(ev)
}

// closeObs tears the observability plane down exactly once: the pollers
// stop (the flusher's stop performs a final flush so terminal counter
// values reach the stream), a service shutdown event is published, and
// the bus closes — which ends every SSE stream.
func (e *Engine) closeObs() {
	e.obsOnce.Do(func() {
		e.stopFlush()
		e.stopRuntime()
		e.bus.Publish(obs.BusEvent{Type: obs.EventService, Name: "shutdown"})
		e.bus.Close()
	})
}

// Submit validates the spec and enqueues a job. It never blocks: a full
// queue is ErrQueueFull, an over-quota (or zero-weight) tenant is
// ErrQuotaExceeded, a closed engine ErrShuttingDown. On a durable
// engine the queued record is persisted before the job id is exposed.
func (e *Engine) Submit(spec JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		e.tel.Counter("service.jobs_invalid").Inc()
		return Status{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.tel.Counter("service.jobs_rejected_shutdown").Inc()
		return Status{}, ErrShuttingDown
	}
	e.seq++
	// The queued phase gets a plain cancel context; TimeoutMS is armed
	// in run() when the job starts, so queue wait never consumes the
	// job's execution budget.
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        fmt.Sprintf("job-%04d", e.seq),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		cancel:    cancel,
		done:      make(chan struct{}),
		tel:       obs.New(),
	}
	j.ctx = ctx
	if err := e.sched.push(j); err != nil {
		cancel()
		e.seq-- // the id was never exposed; reuse it
		if errors.Is(err, ErrQuotaExceeded) {
			e.tel.Counter("service.jobs_rejected_quota").Inc()
		} else {
			e.tel.Counter("service.jobs_rejected_full").Inc()
		}
		return Status{}, err
	}
	// Durability before visibility: the queued record (spec included)
	// must be on the log before the id escapes, or a crash between
	// Submit returning and the first transition would lose the job. A
	// worker may already have popped j, but run() serializes on e.mu,
	// so the record lands first either way.
	if err := e.persistLocked(j, StateQueued); err != nil {
		// The job is already in the fair queue; make it terminal so
		// the worker that pops it skips execution.
		j.state = StateCancelled
		j.err = "store append failed: " + err.Error()
		j.finished = time.Now()
		j.cancel()
		close(j.done)
		e.tel.Counter("service.store_errors").Inc()
		return Status{}, fmt.Errorf("service: persist queued job: %w", err)
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	// The job's own telemetry streams onto the engine bus tagged with the
	// job id: spans live as they open/close, metrics at the flush cadence.
	j.tel.AttachBus(e.bus, j.id)
	e.tel.Counter("service.jobs_submitted").Inc()
	if spec.Tenant != "" {
		e.tel.Counter("service.tenant." + spec.Tenant + ".submitted").Inc()
	}
	e.tel.Gauge("service.jobs_queued").Set(float64(e.queuedLocked()))
	queuedAttrs := []obs.Attr{obs.KV("kind", spec.Kind)}
	if spec.Tenant != "" {
		queuedAttrs = append(queuedAttrs, obs.KV("tenant", spec.Tenant))
	}
	e.publishJob(j, StateQueued, queuedAttrs...)
	e.logf("service: %s submitted (%s, tenant %q)", j.id, spec.Kind, spec.Tenant)
	return j.status(), nil
}

// queuedLocked counts jobs still in StateQueued (engine mutex held).
func (e *Engine) queuedLocked() int {
	n := 0
	for _, j := range e.jobs {
		if j.state == StateQueued {
			n++
		}
	}
	return n
}

// worker consumes jobs until the queue is closed and drained.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		j, ok := e.sched.pop()
		if !ok {
			return
		}
		e.run(j)
	}
}

// run executes one job and records its terminal state.
func (e *Engine) run(j *job) {
	e.mu.Lock()
	if j.terminal() {
		// Cancelled while still queued: nothing to run.
		e.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	if j.spec.TimeoutMS > 0 {
		// Arm the execution timeout now that the job is actually
		// running (JobSpec.TimeoutMS excludes queue wait). Chain the
		// derived CancelFunc so the terminal j.cancel() releases the
		// timer too; Cancel/Shutdown cancelling the base context still
		// propagates to the derived one.
		var cancelTimeout context.CancelFunc
		j.ctx, cancelTimeout = context.WithTimeout(j.ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
		base := j.cancel
		j.cancel = func() { cancelTimeout(); base() }
	}
	e.tel.Gauge("service.jobs_queued").Set(float64(e.queuedLocked()))
	queueWaitMS := float64(j.started.Sub(j.submitted).Nanoseconds()) / 1e6
	if err := e.persistLocked(j, StateRunning); err != nil {
		e.tel.Counter("service.store_errors").Inc()
		e.logf("service: %s running-record append failed: %v", j.id, err)
	}
	e.mu.Unlock()
	e.tel.BucketHistogram("service.job_queue_wait_ms", obs.DurationBucketsMS).Observe(queueWaitMS)
	e.publishJob(j, StateRunning, obs.KV("queue_wait_ms", queueWaitMS))

	if e.cfg.RigLatency > 0 {
		// Model the physical rig occupancy: the slot is held for the
		// programming/capture latency even though the simulator needs
		// none. Cancellation still cuts the wait short.
		t := time.NewTimer(e.cfg.RigLatency)
		select {
		case <-t.C:
		case <-j.ctx.Done():
			t.Stop()
		}
	}

	// Stream the job registry's counter/gauge movement while it runs;
	// the stop below performs a final flush so terminal values land on
	// the bus before the terminal job event does.
	stopFlush := obs.NewMetricsStreamer(j.tel.Metrics, e.bus, j.id).Start(e.cfg.FlushInterval)

	span := j.tel.StartSpan("service.job",
		obs.KV("id", j.id), obs.KV("kind", j.spec.Kind))
	result, err := e.runSafe(j)
	span.End()
	stopFlush()

	e.mu.Lock()
	defer e.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		e.tel.Counter("service.jobs_done").Inc()
	case errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.err = err.Error()
		e.tel.Counter("service.jobs_cancelled").Inc()
	default:
		j.state = StateFailed
		j.err = err.Error()
		e.tel.Counter("service.jobs_failed").Inc()
	}
	runMS := float64(j.finished.Sub(j.started).Nanoseconds()) / 1e6
	e.tel.Histogram("service.job_ms").Observe(runMS)
	e.tel.BucketHistogram("service.job_run_ms", obs.DurationBucketsMS).Observe(runMS)
	if j.spec.Tenant != "" {
		e.tel.Counter("service.tenant." + j.spec.Tenant + "." + j.state).Inc()
	}
	if err := e.persistLocked(j, j.state); err != nil {
		e.tel.Counter("service.store_errors").Inc()
		e.logf("service: %s terminal-record append failed: %v", j.id, err)
	}
	j.cancel() // release the context's resources
	close(j.done)
	e.markFinishedLocked(j)
	terminalAttrs := []obs.Attr{obs.KV("run_ms", runMS)}
	if j.err != "" {
		terminalAttrs = append(terminalAttrs, obs.KV("error", j.err))
	}
	e.publishJob(j, j.state, terminalAttrs...)
	e.logf("service: %s finished: %s", j.id, j.state)
}

// markFinishedLocked records a terminal job for retention accounting
// and prunes the oldest-finished jobs past the RetainJobs cap, so a
// long-running server does not accumulate results and traces without
// bound. Called with the engine mutex held.
func (e *Engine) markFinishedLocked(j *job) {
	e.finished = append(e.finished, j.id)
	for len(e.finished) > e.cfg.RetainJobs {
		id := e.finished[0]
		e.finished = e.finished[1:]
		delete(e.jobs, id)
		for i, o := range e.order {
			if o == id {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
		e.tel.Counter("service.jobs_pruned").Inc()
	}
	e.maybeCompactLocked()
}

// runSafe converts a job panic into a failed job instead of killing the
// worker goroutine.
func (e *Engine) runSafe(j *job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panic: %v", r)
		}
	}()
	return e.execFn(j.ctx, j)
}

// Get returns a job's status.
func (e *Engine) Get(id string) (Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.status(), nil
}

// List returns every job's status in submission order.
func (e *Engine) List() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id].status())
	}
	return out
}

// Result returns a finished job's result value (nil for failed and
// cancelled jobs) alongside its status. A job that is still queued or
// running is ErrNotFinished.
func (e *Engine) Result(id string) (any, Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.terminal() {
		return nil, j.status(), fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.state)
	}
	return j.result, j.status(), nil
}

// Cancel requests cancellation: a queued job goes terminal immediately,
// a running job stops at its next attack checkpoint (within one sweep
// chunk). Cancelling a finished job is a no-op.
func (e *Engine) Cancel(id string) (Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = "cancelled while queued"
		j.finished = time.Now()
		j.cancel()
		close(j.done)
		if err := e.persistLocked(j, StateCancelled); err != nil {
			e.tel.Counter("service.store_errors").Inc()
			e.logf("service: %s cancel-record append failed: %v", id, err)
		}
		e.markFinishedLocked(j)
		e.tel.Counter("service.jobs_cancelled").Inc()
		e.tel.Gauge("service.jobs_queued").Set(float64(e.queuedLocked()))
		e.publishJob(j, StateCancelled, obs.KV("error", j.err))
		e.logf("service: %s cancelled while queued", id)
	case StateRunning:
		j.cancel()
		e.logf("service: %s cancellation requested", id)
	}
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (e *Engine) Wait(ctx context.Context, id string) (Status, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-j.done:
		return e.Get(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// WriteTrace streams a finished job's telemetry (span tree + metrics)
// as NDJSON.
func (e *Engine) WriteTrace(w io.Writer, id string) error {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.terminal() {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.state)
	}
	tel := j.tel
	e.mu.Unlock()
	return obs.WriteNDJSON(w, tel.Tracer, tel.Metrics)
}

// CacheStats exposes the victim build cache counters.
func (e *Engine) CacheStats() (hits, misses, evictions int) {
	return e.cache.Stats()
}

// Telemetry returns the engine-level telemetry handle (for /metrics).
func (e *Engine) Telemetry() *obs.Telemetry { return e.tel }

// ShuttingDown reports whether Shutdown has been initiated.
func (e *Engine) ShuttingDown() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Shutdown stops accepting jobs and drains the queue: every queued and
// running job is given until ctx expires to finish. On deadline the
// remaining jobs' contexts are cancelled, the engine waits for them to
// stop at their next checkpoint, and Shutdown returns ErrDrainDeadline.
// Shutdown is idempotent; concurrent calls all wait for the drain.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.sched.close()
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		e.closeObs()
		e.closeStore()
		e.logf("service: shutdown drained cleanly")
		return nil
	case <-ctx.Done():
	}
	// Deadline: cancel everything still live and wait for the workers to
	// observe it (attack checkpoints fire within one sweep chunk).
	e.mu.Lock()
	for _, j := range e.jobs {
		if !j.terminal() {
			j.cancel()
		}
	}
	e.mu.Unlock()
	<-drained
	e.closeObs()
	e.closeStore()
	e.logf("service: shutdown cancelled in-flight jobs at deadline")
	return ErrDrainDeadline
}

// closeStore syncs and closes the durable store once the drain is over
// (every terminal record has been appended by then).
func (e *Engine) closeStore() {
	if e.cfg.Store == nil {
		return
	}
	if err := e.cfg.Store.Close(); err != nil {
		e.logf("service: store close: %v", err)
	}
}
