package hdl

import (
	"fmt"

	"snowbma/internal/netlist"
	"snowbma/internal/snow3g"
)

// Device abstracts anything that behaves like the configured FPGA: the
// netlist-level simulator used in tests and the bitstream-configured
// device simulator used by the attack. Ports are addressed by their
// bit-blasted names ("iv0[5]", "z[31]", "load").
type Device interface {
	SetInput(name string, v bool)
	Clock()
	Read(name string) bool
}

// setWord drives the 32 bits of an input word port.
func setWord(dev Device, port string, v uint32) {
	for i := 0; i < 32; i++ {
		dev.SetInput(fmt.Sprintf("%s[%d]", port, i), v>>uint(i)&1 == 1)
	}
}

// readWord samples the 32 bits of an output word port.
func readWord(dev Device, port string) uint32 {
	var v uint32
	for i := 0; i < 32; i++ {
		if dev.Read(fmt.Sprintf("%s[%d]", port, i)) {
			v |= 1 << uint(i)
		}
	}
	return v
}

func setControls(dev Device, load, init, run, gen bool) {
	dev.SetInput(PortLoad, load)
	dev.SetInput(PortInit, init)
	dev.SetInput(PortRun, run)
	dev.SetInput(PortGen, gen)
}

// GenerateKeystream drives the SNOW 3G control protocol on dev: one load
// cycle (γ(K, IV) with the bitstream-resident key), 32 initialization
// cycles, one discarded keystream-mode cycle, then n keystream words.
// This is the only interface the attack has to the victim device.
func GenerateKeystream(dev Device, iv snow3g.IV, n int) []uint32 {
	for i := 0; i < 4; i++ {
		setWord(dev, IVPort(i), iv[i])
	}
	// Load γ(K, IV), clear the FSM.
	setControls(dev, true, false, true, false)
	dev.Clock()
	// 32 initialization rounds.
	setControls(dev, false, true, true, false)
	for i := 0; i < 32; i++ {
		dev.Clock()
	}
	// Keystream mode: the first produced word is discarded per the
	// specification.
	setControls(dev, false, false, true, true)
	dev.Clock()
	z := make([]uint32, 0, n)
	for t := 0; t < n; t++ {
		dev.Clock()
		z = append(z, readWord(dev, PortZ))
	}
	return z
}

// BatchDevice abstracts a bitsliced multi-lane device: every pin
// carries lane-mask words, bit L%64 of word L/64 being the value in
// lane L. SetInputLanes broadcasts one 64-lane pattern across every
// word (the protocol only drives all-0/all-1); ReadLaneWords appends
// the pin's lane words to dst and returns it. The device.Batch
// evaluator implements it at 1..device.MaxLanes lanes.
type BatchDevice interface {
	SetInputLanes(name string, mask uint64)
	ClockBatch()
	ReadLaneWords(name string, dst []uint64) []uint64
	Lanes() int
}

// setWordLanes drives an input word port with the same value on every
// lane (the control protocol and IV are common to all candidates).
func setWordLanes(dev BatchDevice, port string, v uint32) {
	for i := 0; i < 32; i++ {
		var mask uint64
		if v>>uint(i)&1 == 1 {
			mask = ^uint64(0)
		}
		dev.SetInputLanes(fmt.Sprintf("%s[%d]", port, i), mask)
	}
}

func setControlsLanes(dev BatchDevice, load, init, run, gen bool) {
	all := func(v bool) uint64 {
		if v {
			return ^uint64(0)
		}
		return 0
	}
	dev.SetInputLanes(PortLoad, all(load))
	dev.SetInputLanes(PortInit, all(init))
	dev.SetInputLanes(PortRun, all(run))
	dev.SetInputLanes(PortGen, all(gen))
}

// GenerateKeystreamBatch drives the same SNOW 3G control protocol as
// GenerateKeystream on a bitsliced batch device and returns one
// keystream slice per lane: out[L][t] is keystream word t of lane L.
// Every lane sees identical inputs; lanes differ only through their
// configuration patches, so lane L's output equals what GenerateKeystream
// would produce on a scalar device loaded with lane L's image.
func GenerateKeystreamBatch(dev BatchDevice, iv snow3g.IV, n int) [][]uint32 {
	for i := 0; i < 4; i++ {
		setWordLanes(dev, IVPort(i), iv[i])
	}
	setControlsLanes(dev, true, false, true, false)
	dev.ClockBatch()
	setControlsLanes(dev, false, true, true, false)
	for i := 0; i < 32; i++ {
		dev.ClockBatch()
	}
	setControlsLanes(dev, false, false, true, true)
	dev.ClockBatch()
	lanes := dev.Lanes()
	out := make([][]uint32, lanes)
	for L := range out {
		out[L] = make([]uint32, n)
	}
	var buf []uint64
	for t := 0; t < n; t++ {
		dev.ClockBatch()
		for i := 0; i < 32; i++ {
			buf = dev.ReadLaneWords(fmt.Sprintf("%s[%d]", PortZ, i), buf[:0])
			for L := 0; L < lanes; L++ {
				if buf[L>>6]>>uint(L&63)&1 == 1 {
					out[L][t] |= 1 << uint(i)
				}
			}
		}
	}
	return out
}

// SimDevice adapts a netlist simulator to the Device interface for
// netlist-level (pre-bitstream) validation.
type SimDevice struct {
	sim   *netlist.Sim
	pins  map[string]netlist.NodeID
	ports map[string]netlist.NodeID
	dirty bool
}

// NewSimDevice wraps a simulator of the given design's netlist.
func NewSimDevice(n *netlist.Netlist) (*SimDevice, error) {
	sim, err := netlist.NewSim(n)
	if err != nil {
		return nil, err
	}
	d := &SimDevice{sim: sim, pins: map[string]netlist.NodeID{}, ports: map[string]netlist.NodeID{}}
	for _, pi := range n.PIs {
		d.pins[n.Nodes[pi].Name] = pi
	}
	for _, name := range n.OutputNames() {
		d.ports[name] = n.POs[name]
	}
	return d, nil
}

// SetInput drives a primary input by name.
func (d *SimDevice) SetInput(name string, v bool) {
	pin, ok := d.pins[name]
	if !ok {
		panic(fmt.Sprintf("hdl: unknown input pin %q", name))
	}
	d.sim.SetInput(pin, v)
	d.dirty = true
}

// Clock advances the design one cycle.
func (d *SimDevice) Clock() {
	d.sim.Step()
	d.dirty = true
}

// Read samples a primary output after the last clock edge.
func (d *SimDevice) Read(name string) bool {
	po, ok := d.ports[name]
	if !ok {
		panic(fmt.Sprintf("hdl: unknown output port %q", name))
	}
	if d.dirty {
		d.sim.Settle()
		d.dirty = false
	}
	return d.sim.Value(po)
}

// Reset restores the registers to the power-on state.
func (d *SimDevice) Reset() {
	d.sim.Reset()
	d.dirty = true
}
