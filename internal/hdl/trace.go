package hdl

import (
	"fmt"
	"io"

	"snowbma/internal/vcd"
)

// TraceDevice wraps a Device and dumps a VCD waveform of its input and
// output pins, one sample per clock cycle — the debugging view a
// hardware engineer would use to watch the (possibly faulted) cipher
// run.
type TraceDevice struct {
	inner   Device
	wr      *vcd.Writer
	pins    []string
	inputs  map[string]bool
	nOut    int
	samples int
}

// NewTraceDevice traces the given input pins (mirrored from SetInput
// calls) and output pins (read back after every clock) into w.
func NewTraceDevice(inner Device, w io.Writer, inputPins, outputPins []string) *TraceDevice {
	pins := append(append([]string{}, inputPins...), outputPins...)
	return &TraceDevice{
		inner:  inner,
		wr:     vcd.New(w, "snow3g", pins),
		pins:   pins,
		inputs: map[string]bool{},
		nOut:   len(outputPins),
	}
}

// SetInput forwards to the wrapped device and mirrors the value.
func (t *TraceDevice) SetInput(name string, v bool) {
	t.inputs[name] = v
	t.inner.SetInput(name, v)
}

// Clock advances the device and samples all traced pins.
func (t *TraceDevice) Clock() {
	t.inner.Clock()
	values := make([]bool, len(t.pins))
	for i, pin := range t.pins {
		if i < len(t.pins)-t.nOut {
			values[i] = t.inputs[pin]
		} else {
			values[i] = t.inner.Read(pin)
		}
	}
	if err := t.wr.Tick(values); err != nil {
		panic(fmt.Sprintf("hdl: VCD trace failed: %v", err))
	}
	t.samples++
}

// Read forwards to the wrapped device.
func (t *TraceDevice) Read(name string) bool { return t.inner.Read(name) }

// Close finalizes the waveform and reports the number of cycles traced.
func (t *TraceDevice) Close() (int, error) {
	return t.samples, t.wr.Close()
}

// KeystreamPins returns a convenient probe set: the four controls and
// the full z word.
func KeystreamPins() (inputs, outputs []string) {
	inputs = []string{PortLoad, PortInit, PortRun, PortGen}
	for i := 0; i < 32; i++ {
		outputs = append(outputs, fmt.Sprintf("%s[%d]", PortZ, i))
	}
	return inputs, outputs
}
