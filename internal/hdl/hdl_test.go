package hdl

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"snowbma/internal/boolfn"
	"snowbma/internal/mapper"
	"snowbma/internal/netlist"
	"snowbma/internal/snow3g"
)

var (
	testKey = snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	testIV  = snow3g.IV{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F}
)

func buildSim(t *testing.T, cfg Config) (*Design, *SimDevice) {
	t.Helper()
	d := Build(cfg)
	dev, err := NewSimDevice(d.N)
	if err != nil {
		t.Fatal(err)
	}
	return d, dev
}

func TestDesignMatchesReferenceCipher(t *testing.T) {
	_, dev := buildSim(t, Config{Key: testKey})
	got := GenerateKeystream(dev, testIV, 8)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hardware z%d = %08x, software %08x", i+1, got[i], want[i])
		}
	}
}

func TestDesignMatchesReferenceAcrossKeysAndIVs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		var k snow3g.Key
		var iv snow3g.IV
		for i := range k {
			k[i], iv[i] = rng.Uint32(), rng.Uint32()
		}
		_, dev := buildSim(t, Config{Key: k})
		got := GenerateKeystream(dev, iv, 4)
		ref := snow3g.New(snow3g.Fault{})
		ref.Init(k, iv)
		want := ref.KeystreamWords(4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d word %d: hw %08x sw %08x", trial, i+1, got[i], want[i])
			}
		}
	}
}

func TestDesignReinitializable(t *testing.T) {
	_, dev := buildSim(t, Config{Key: testKey})
	first := GenerateKeystream(dev, testIV, 4)
	second := GenerateKeystream(dev, testIV, 4) // re-load without reset
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("re-initialization diverged at word %d", i)
		}
	}
}

func TestProtectedDesignSameBehaviour(t *testing.T) {
	_, dev := buildSim(t, Config{Key: testKey, Protected: true})
	got := GenerateKeystream(dev, testIV, 4)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("protected design diverges at word %d: %08x vs %08x", i+1, got[i], want[i])
		}
	}
}

func TestProtectedConstraintCounts(t *testing.T) {
	d := Build(Config{Key: testKey, Protected: true})
	if len(d.TrivialCuts) == 0 {
		t.Fatal("protected design has no trivial-cut constraints")
	}
	// 32 target XORs + 5 decoy words of 32 bits each (paper Section
	// VII-A: m = 32, r = 160, x = 5 ≥ 4.9).
	if d.DecoyXORs != 160 {
		t.Fatalf("decoy XOR count %d, want 160", d.DecoyXORs)
	}
	if len(d.TrivialCuts) != 192 {
		t.Fatalf("trivial cut count %d, want 192", len(d.TrivialCuts))
	}
	for _, vi := range d.V {
		if !d.TrivialCuts[vi] {
			t.Fatal("target XOR not constrained in protected design")
		}
	}
}

func TestUnprotectedMappingContainsPaperLUTs(t *testing.T) {
	// The heart of the reproduction: after technology mapping, the z_t
	// path must contain 32 LUTs P-equivalent to f2 covering v, and the
	// feedback path 24 f8-LUTs + 8 f19-LUTs.
	d := Build(Config{Key: testKey})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(32, 7); err != nil {
		t.Fatal(err)
	}
	canonF2 := boolfn.PClassCanon(boolfn.F2)
	canonF8 := boolfn.PClassCanon(boolfn.F8)
	canonF19 := boolfn.PClassCanon(boolfn.F19)
	var nF2, nF8, nF19 int
	for _, lut := range r.LUTs {
		switch boolfn.PClassCanon(lut.Fn) {
		case canonF2:
			nF2++
		case canonF8:
			nF8++
		case canonF19:
			nF19++
		}
	}
	if nF2 < 32 {
		t.Errorf("mapping contains %d f2-class LUTs, want ≥ 32", nF2)
	}
	if nF8 < 24 {
		t.Errorf("mapping contains %d f8-class LUTs, want ≥ 24", nF8)
	}
	if nF19 < 8 {
		t.Errorf("mapping contains %d f19-class LUTs, want ≥ 8", nF19)
	}
	// Every target XOR must be covered by at least two LUTs (z_t path and
	// feedback path), mirroring Fig 5.
	for i, vi := range d.V {
		if cov := r.CoveringLUTs(vi); len(cov) < 2 {
			t.Errorf("v[%d] covered by %d LUTs, want ≥ 2", i, len(cov))
		}
	}
}

func TestProtectedMappingHidesTargets(t *testing.T) {
	d := Build(Config{Key: testKey, Protected: true})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, TrivialCuts: d.TrivialCuts, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(32, 8); err != nil {
		t.Fatal(err)
	}
	canonF8 := boolfn.PClassCanon(boolfn.F8)
	canonF19 := boolfn.PClassCanon(boolfn.F19)
	xor2 := boolfn.PClassCanon(boolfn.Xor(boolfn.A(1), boolfn.A(2)))
	var nXor2 int
	for _, lut := range r.LUTs {
		switch boolfn.PClassCanon(lut.Fn) {
		case canonF8, canonF19:
			t.Fatalf("protected mapping still contains an f8/f19-class LUT")
		case xor2:
			nXor2++
		}
	}
	// All 192 trivially cut XORs must be bare XOR2 LUTs.
	if nXor2 < 192 {
		t.Fatalf("protected mapping has %d XOR2 LUTs, want ≥ 192", nXor2)
	}
	// Every constrained node is its own root.
	for v := range d.TrivialCuts {
		if _, ok := r.LUTIndex[v]; !ok {
			t.Fatalf("constrained node %d not a LUT root", v)
		}
	}
}

func TestProtectedCriticalPathLonger(t *testing.T) {
	du := Build(Config{Key: testKey})
	dp := Build(Config{Key: testKey, Protected: true})
	ru, err := mapper.Map(du.N, mapper.Options{K: 6, Boundaries: du.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := mapper.Map(dp.N, mapper.Options{K: 6, TrivialCuts: dp.TrivialCuts, Boundaries: dp.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	model := mapper.DefaultDelays()
	tu, tp := ru.Timing(model), rp.Timing(model)
	if tp.Delay <= tu.Delay {
		t.Fatalf("protected critical path %.3f ≤ unprotected %.3f (paper: 7.514 vs 6.313 ns)",
			tp.Delay, tu.Delay)
	}
}

func TestDesignStatsReasonable(t *testing.T) {
	d := Build(Config{Key: testKey})
	stats := d.N.ComputeStats()
	if stats.FFs != 16*32+3*32+32 {
		t.Fatalf("FF count %d, want 640 (16 LFSR stages + R1..R3 + zreg)", stats.FFs)
	}
	if stats.BRAMs != 4+4+4+1+1 {
		t.Fatalf("BRAM count %d, want 14", stats.BRAMs)
	}
	if len(d.N.Adders) != 2 {
		t.Fatalf("adder count %d, want 2", len(d.N.Adders))
	}
	if err := d.N.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVNodesAreXor2(t *testing.T) {
	d := Build(Config{Key: testKey})
	for i, vi := range d.V {
		nd := d.N.Nodes[vi]
		if nd.Op != netlist.OpXor {
			t.Fatalf("v[%d] is %v, want xor", i, nd.Op)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(Config{Key: testKey})
	}
}

func BenchmarkNetlistKeystream16(b *testing.B) {
	d := Build(Config{Key: testKey})
	dev, err := NewSimDevice(d.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateKeystream(dev, testIV, 16)
	}
}

func TestPlanCountermeasureOnSnow3G(t *testing.T) {
	// The automated Section VII-A planner, applied to the real design
	// with the 32 target XORs, must find enough same-function decoys for
	// 2^128 and the resulting mapping must hide the f8/f19 populations.
	d := Build(Config{Key: testKey})
	plan, err := mapper.PlanCountermeasure(d.N, d.V, 128)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SecurityBits < 128 {
		t.Fatalf("plan reaches only 2^%.1f", plan.SecurityBits)
	}
	// Lemma VII-A at m = 32 needs r ≈ 157 decoys for 2^128 (x ≥ 4.9).
	if len(plan.Decoys) < 150 {
		t.Fatalf("plan selected %d decoys, expected ≈ 157", len(plan.Decoys))
	}
	r, err := mapper.Map(d.N, mapper.Options{K: 6,
		TrivialCuts: plan.TrivialCuts, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(32, 9); err != nil {
		t.Fatal(err)
	}
	canonF8 := boolfn.PClassCanon(boolfn.F8)
	canonF19 := boolfn.PClassCanon(boolfn.F19)
	for _, lut := range r.LUTs {
		c := boolfn.PClassCanon(lut.Fn)
		if c == canonF8 || c == canonF19 {
			t.Fatal("auto-planned countermeasure still exposes an f8/f19 LUT")
		}
	}
}

func TestTopPathsFeedbackNotAlwaysCritical(t *testing.T) {
	// The paper reads the ten-slowest-paths report; ours must produce a
	// consistent one for the mapped SNOW 3G design.
	d := Build(Config{Key: testKey})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	top := r.TopPaths(mapper.DefaultDelays(), 10)
	if len(top) != 10 {
		t.Fatalf("got %d paths, want 10", len(top))
	}
	for i := 1; i < 10; i++ {
		if top[i].Delay > top[i-1].Delay {
			t.Fatal("paths not sorted")
		}
	}
	if top[0].Endpoint == "" || len(top[0].Through) < 2 {
		t.Fatal("critical path report incomplete")
	}
}

func TestTraceDeviceProducesVCD(t *testing.T) {
	_, dev := buildSim(t, Config{Key: testKey})
	var buf bytes.Buffer
	in, out := KeystreamPins()
	tr := NewTraceDevice(dev, &buf, in, out)
	z := GenerateKeystream(tr, testIV, 4)
	cycles, err := tr.Close()
	if err != nil {
		t.Fatal(err)
	}
	// 1 load + 32 init + 1 discard + 4 keystream cycles.
	if cycles != 38 {
		t.Fatalf("traced %d cycles, want 38", cycles)
	}
	dump := buf.String()
	if !strings.Contains(dump, "$var wire 1") || !strings.Contains(dump, "z[31]") {
		t.Fatal("VCD header incomplete")
	}
	// The keystream through the traced wrapper must be unchanged.
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(4)
	for i := range want {
		if z[i] != want[i] {
			t.Fatal("tracing changed device behaviour")
		}
	}
}

func TestSnow3GMappingFormallyVerified(t *testing.T) {
	// Formal (BDD) equivalence proof of the complete mapped SNOW 3G
	// design against its source netlist, both variants.
	for _, protected := range []bool{false, true} {
		d := Build(Config{Key: testKey, Protected: protected})
		opts := mapper.Options{K: 6, Boundaries: d.Boundaries}
		if protected {
			opts.TrivialCuts = d.TrivialCuts
		}
		r, err := mapper.Map(d.N, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.VerifyFormal(0); err != nil {
			t.Fatalf("protected=%v: %v", protected, err)
		}
	}
}

func TestProtocolMisuseDoesNotCrash(t *testing.T) {
	// Driving the control pins out of order must never crash the model;
	// it just produces a wrong keystream (as on hardware).
	_, dev := buildSim(t, Config{Key: testKey})
	dev.SetInput(PortLoad, true)
	dev.SetInput(PortInit, true) // illegal: load and init together
	dev.SetInput(PortRun, true)
	dev.SetInput(PortGen, true)
	for i := 0; i < 8; i++ {
		dev.Clock()
	}
	_ = dev.Read("z[0]")
	// A proper run afterwards still works.
	got := GenerateKeystream(dev, testIV, 2)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(2)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatal("device did not recover from protocol misuse")
	}
}

func TestHoldWithoutRunFreezesState(t *testing.T) {
	// With all controls low the LFSR keeps shifting (free-running
	// datapath) but no keystream is produced: z stays 0.
	_, dev := buildSim(t, Config{Key: testKey})
	for _, pin := range []string{PortLoad, PortInit, PortRun, PortGen} {
		dev.SetInput(pin, false)
	}
	for i := 0; i < 4; i++ {
		dev.Clock()
		for b := 0; b < 32; b++ {
			if dev.Read(fmt.Sprintf("z[%d]", b)) {
				t.Fatal("keystream register active without gen")
			}
		}
	}
}
