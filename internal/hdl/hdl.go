// Package hdl generates the gate-level SNOW 3G circuit that plays the
// role of the paper's VHDL implementation: a 16-stage 32-bit LFSR, the
// three-register FSM with BRAM S-boxes, the α/α⁻¹ feedback with BRAM
// MULα/DIVα tables, carry-chain adders for ⊞, mode-control gating, and
// γ(K, IV) loading with the key stored in the bitstream (as block-RAM
// constants). The circuit matches the structure the paper reverse-
// engineers (Fig. 5): the FSM output word W = (s15 ⊞ R1) ⊕ R2 is a set of
// 32 two-input XOR nodes v that feed both the keystream output z_t and
// (during initialization) the LFSR feedback.
//
// The generator also produces the protected variant of Section VII-A:
// the target XORs plus five decoy 32-bit XOR words are forced to trivial
// cuts so each becomes an individual 2-input-XOR LUT.
package hdl

import (
	"fmt"

	"snowbma/internal/netlist"
	"snowbma/internal/snow3g"
)

// Port names of the generated design. The device simulator and test
// harnesses drive the cipher exclusively through these.
const (
	PortLoad = "load" // 1 for one cycle: load γ(K, IV), clear FSM
	PortInit = "init" // 1 during the 32 initialization rounds
	PortRun  = "run"  // 1 whenever the cipher is clocked productively
	PortGen  = "gen"  // 1 during keystream generation
	PortZ    = "z"    // 32-bit registered keystream output
)

// IVPort returns the name of IV word w (0..3), bit indexed separately.
func IVPort(w int) string { return fmt.Sprintf("iv%d", w) }

// Config selects design variants.
type Config struct {
	// Key is baked into the bitstream via the key ROBs (paper attack
	// model assumption 2: "the encryption key K is stored in the
	// bitstream").
	Key snow3g.Key
	// Protected applies the Section VII-A countermeasure: the target XOR
	// word v and five decoy XOR words are constrained to trivial cuts.
	Protected bool
}

// Design is the generated circuit plus the metadata the test suite (but
// never the attack!) uses as ground truth.
type Design struct {
	N   *netlist.Netlist
	Cfg Config

	// IV are the four 32-bit IV input words.
	IV [4]netlist.Word
	// Controls.
	Load, Init, Run, Gen netlist.NodeID
	// V holds the 32 target XOR nodes (W bits) — ground truth for tests.
	V netlist.Word
	// TrivialCuts lists the countermeasure constraints (empty when
	// unprotected); pass to mapper.Options.
	TrivialCuts map[netlist.NodeID]bool
	// Boundaries lists the hierarchy-boundary nets preserved by
	// synthesis (the per-bit feedback nets of the fsm_feedback entity);
	// pass to mapper.Options. Without them a fully flattened mapping
	// absorbs the feedback logic into the s15 load MUXes and the
	// feedback-path candidates take a merged shape instead of the
	// paper's f8/f19.
	Boundaries map[netlist.NodeID]bool
	// DecoyXORs counts the trivially-cut non-target XOR nodes.
	DecoyXORs int
}

const w = 32 // SNOW 3G word width

// Build generates the circuit.
func Build(cfg Config) *Design {
	n := netlist.New()
	d := &Design{N: n, Cfg: cfg,
		TrivialCuts: map[netlist.NodeID]bool{},
		Boundaries:  map[netlist.NodeID]bool{},
	}

	// Control and IV inputs.
	d.Load = n.Input(PortLoad)
	d.Init = n.Input(PortInit)
	d.Run = n.Input(PortRun)
	d.Gen = n.Input(PortGen)
	for i := 0; i < 4; i++ {
		d.IV[i] = n.InputWord(IVPort(i), w)
	}

	// Key storage: four 32-bit words as zero-address ROMs whose content
	// travels in the bitstream's BRAM frames.
	var key [4]netlist.Word
	for i := 0; i < 4; i++ {
		key[i] = n.NewBRAM(fmt.Sprintf("key%d", i), nil, w, []uint64{uint64(cfg.Key[i])})
	}

	// State registers.
	var s [16]netlist.Word
	for j := 0; j < 16; j++ {
		s[j] = n.FFWord(fmt.Sprintf("s%d", j), w, 0)
	}
	r1 := n.FFWord("R1", w, 0)
	r2 := n.FFWord("R2", w, 0)
	r3 := n.FFWord("R3", w, 0)
	zreg := n.FFWord("zreg", w, 0)

	// FSM S-boxes as T-table BRAMs: S(x) = T0[x0] ⊕ T1[x1] ⊕ T2[x2] ⊕
	// T3[x3] with x0 the most significant byte.
	s1out := sboxWord(n, "S1", r1, s1Tables())
	s2out := sboxWord(n, "S2", r2, s2Tables())

	// FSM adders (carry chains).
	addW := n.NewAdder("addW", s[15], r1)   // s15 ⊞ R1
	r3xs5 := n.XorWord(r3, s[5])            // R3 ⊕ s5
	addR1 := n.NewAdder("addR1", r2, r3xs5) // R2 ⊞ (R3 ⊕ s5)

	// The target node v: W = (s15 ⊞ R1) ⊕ R2, one 2-input XOR per bit.
	d.V = n.XorWord(addW, r2)
	for i, vi := range d.V {
		n.SetName(vi, fmt.Sprintf("v[%d]", i))
	}

	// α and α⁻¹ feedback: byte shifts plus the MULα/DIVα BRAM lookups.
	mulA := n.NewBRAM("mulalpha", s[0].Byte(3), w, alphaContent(snow3g.MulAlpha))
	divA := n.NewBRAM("divalpha", s[11].Byte(0), w, alphaContent(snow3g.DivAlpha))
	s0shift := n.ShiftLeftBytes(s[0], 1)
	s11shift := n.ShiftRightBytes(s[11], 1)

	// Linear feedback XOR tree. The partial words lin1 and lin2 exist for
	// all 32 bits and double as countermeasure decoys.
	lin1 := n.XorWord(netlist.Word(mulA), s[2])
	lin2 := n.XorWord(lin1, netlist.Word(divA))
	linear := n.XorWord(n.XorWord(lin2, s0shift), s11shift)
	for i, li := range linear {
		n.SetName(li, fmt.Sprintf("linear[%d]", i))
		// The linear feedback word is the output of the alpha_feedback
		// entity; its nets survive synthesis as boundaries, which is why
		// the paper's f8/f19 see it as the single variable a6.
		d.Boundaries[li] = true
	}

	// Feedback with the FSM word gated in during initialization. As the
	// paper observes for the implementation under attack, 24 bits use the
	// full three-control gating while the top byte uses the shortened
	// two-control form (the byte whose α⁻¹ shift term vanishes) — this is
	// what splits the confirmed feedback LUTs into 24 LUT₂ + 8 LUT₃.
	notGen := n.Not(d.Gen)
	notInit := n.Not(d.Init)
	ctl3 := n.And(n.And(d.Init, d.Run), notGen) // init·run·¬gen
	fb := make(netlist.Word, w)
	for i := 0; i < w; i++ {
		if i < 24 {
			fb[i] = n.Xor(n.And(d.V[i], ctl3), linear[i])
		} else {
			// fb = (v·¬gen) ⊕ (run·linear): identical behaviour, mapped
			// into the f19 shape.
			fb[i] = n.Xor(n.And(d.V[i], notGen), n.And(d.Run, linear[i]))
		}
		n.SetName(fb[i], fmt.Sprintf("fb[%d]", i))
		// The feedback nets are outputs of the fsm_feedback entity and
		// survive hierarchy-rebuilding synthesis as mapping boundaries.
		d.Boundaries[fb[i]] = true
	}

	// γ(K, IV) per stage. ones(x) denotes x ⊕ all-1s.
	gamma := make([]netlist.Word, 16)
	gamma[0] = n.NotWord(key[0])
	gamma[1] = n.NotWord(key[1])
	gamma[2] = n.NotWord(key[2])
	gamma[3] = n.NotWord(key[3])
	gamma[4] = key[0]
	gamma[5] = key[1]
	gamma[6] = key[2]
	gamma[7] = key[3]
	gamma[8] = n.NotWord(key[0])
	gamma[9] = n.XorWord(n.NotWord(key[1]), d.IV[3])
	gamma[10] = n.XorWord(n.NotWord(key[2]), d.IV[2])
	gamma[11] = n.NotWord(key[3])
	gamma[12] = n.XorWord(key[0], d.IV[1])
	gamma[13] = key[1]
	gamma[14] = key[2]
	gamma[15] = n.XorWord(key[3], d.IV[0])

	// LFSR stage updates: s_j' = load ? γ_j : s_{j+1} (s15' takes fb).
	for j := 0; j < 16; j++ {
		var next netlist.Word
		if j < 15 {
			next = s[j+1]
		} else {
			next = fb
		}
		n.ConnectWord(s[j], n.MuxWord(d.Load, gamma[j], next))
	}

	// FSM register updates with synchronous clear on load.
	notLoad := n.Not(d.Load)
	n.ConnectWord(r1, n.AndWordBit(addR1, notLoad))
	n.ConnectWord(r2, n.AndWordBit(s1out, notLoad))
	n.ConnectWord(r3, n.AndWordBit(s2out, notLoad))

	// Registered keystream output: z' = (v ⊕ s0) gated by run·gen·¬init.
	zGate := n.And(n.And(d.Run, d.Gen), notInit)
	z2 := n.XorWord(d.V, s[0]) // the outer XOR of Fig 2 (a decoy word)
	n.ConnectWord(zreg, n.AndWordBit(z2, zGate))
	n.OutputWord(PortZ, zreg)

	if cfg.Protected {
		decoys := [][]netlist.NodeID{r3xs5, z2, lin1, lin2, gamma[15]}
		for _, vi := range d.V {
			d.TrivialCuts[vi] = true
		}
		for _, word := range decoys {
			for _, u := range word {
				if n.Nodes[u].Op == netlist.OpXor {
					d.TrivialCuts[u] = true
					d.DecoyXORs++
				}
			}
		}
	}
	return d
}

// sboxWord instantiates the four per-byte T-table BRAMs of an AES-style
// S-box and XORs their 32-bit outputs.
func sboxWord(n *netlist.Netlist, name string, in netlist.Word, tables [4][256]uint32) netlist.Word {
	var acc netlist.Word
	for b := 0; b < 4; b++ {
		content := make([]uint64, 256)
		for x := 0; x < 256; x++ {
			content[x] = uint64(tables[b][x])
		}
		// Byte 3 of the register word is the specification's w0 (most
		// significant byte), which indexes table 0.
		out := netlist.Word(n.NewBRAM(fmt.Sprintf("%s_T%d", name, b), in.Byte(3-b), w, content))
		if acc == nil {
			acc = out
		} else {
			acc = n.XorWord(acc, out)
		}
	}
	return acc
}

// s1Tables and s2Tables collect the four T-tables of each FSM S-box.
func s1Tables() [4][256]uint32 {
	var t [4][256]uint32
	for b := 0; b < 4; b++ {
		t[b] = snow3g.S1TTable(b)
	}
	return t
}

func s2Tables() [4][256]uint32 {
	var t [4][256]uint32
	for b := 0; b < 4; b++ {
		t[b] = snow3g.S2TTable(b)
	}
	return t
}

// alphaContent builds the 256-entry table of an 8→32-bit map.
func alphaContent(f func(byte) uint32) []uint64 {
	out := make([]uint64, 256)
	for i := range out {
		out[i] = uint64(f(byte(i)))
	}
	return out
}
