package boolfn

// XOR-structure analysis: the attack's target node v is a 2-input XOR,
// so every LUT covering it depends on two of its inputs *only through
// their parity*. These predicates detect that structure directly from a
// truth table, which lets an attacker shortlist target classes from a
// LUT census without guessing a candidate catalogue first.

// xorThrough reports whether f depends on variables i and j only through
// a_i ⊕ a_j: swapping the pair's values (0,1)→(1,0) and (0,0)→(1,1)
// leaves f unchanged.
func xorThrough(f TT, i, j int) bool {
	if i == j {
		return false
	}
	f00 := f.Cofactor(i, false).Cofactor(j, false)
	f11 := f.Cofactor(i, true).Cofactor(j, true)
	f01 := f.Cofactor(i, false).Cofactor(j, true)
	f10 := f.Cofactor(i, true).Cofactor(j, false)
	return f00 == f11 && f01 == f10
}

// XorPairs returns all variable pairs (i < j) that f sees only as their
// XOR, restricted to variables in f's support. For f2 this is the three
// pairs of the XOR trio; for f8/f19 the single pair (a1, a2).
func XorPairs(f TT) [][2]int {
	mask, _ := f.Support()
	var out [][2]int
	for i := 0; i < MaxVars; i++ {
		if mask>>uint(i)&1 == 0 {
			continue
		}
		for j := i + 1; j < MaxVars; j++ {
			if mask>>uint(j)&1 == 0 {
				continue
			}
			if xorThrough(f, i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// XorGroups merges XorPairs into maximal groups: variables pairwise
// XOR-transparent form one parity input. f2 yields {a1, a2, a3}.
func XorGroups(f TT) [][]int {
	pairs := XorPairs(f)
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, p := range pairs {
		for _, v := range p {
			if _, ok := parent[v]; !ok {
				parent[v] = v
			}
		}
		ra, rb := find(p[0]), find(p[1])
		if ra != rb {
			parent[rb] = ra
		}
	}
	groups := map[int][]int{}
	for v := range parent {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	var out [][]int
	for _, g := range groups {
		// insertion sort for determinism
		for i := 1; i < len(g); i++ {
			for j := i; j > 0 && g[j] < g[j-1]; j-- {
				g[j], g[j-1] = g[j-1], g[j]
			}
		}
		out = append(out, g)
	}
	// deterministic order by first element
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// StuckXorZero returns f with the XOR of the given group forced to 0 —
// the generic form of the paper's fault α (equation (1)): substitute
// a_i = a_j, i.e. take the cofactor where the parity is even. The result
// no longer depends on any group variable except the first (which is
// then also removed since the parity is fixed).
func StuckXorZero(f TT, group []int) TT {
	if len(group) < 2 {
		return f
	}
	// Set all group variables equal to the first one, then note the
	// parity of |group| copies of the same value: for even sizes the
	// parity is constant 0; for odd sizes it equals the variable itself.
	// The paper's case is a pair inside a wider XOR: replace the PAIR by
	// 0, keeping any remaining XOR inputs. We implement pair semantics:
	// group[0] and group[1] are tied, further variables left intact.
	// Only pair semantics are defined (the paper's v is a 2-input XOR):
	// tie group[0] = group[1], which fixes their parity to 0. For
	// xor-through pairs the even cofactor is independent of both
	// variables and fully defines the faulty table.
	i, j := group[0], group[1]
	return f.Cofactor(i, false).Cofactor(j, false)
}

// MuxSelectVars returns the variables s for which f decomposes as
// s·g ⊕ s̄·h with g and h non-constant and support-disjoint — the
// signature of a 2-to-1 MUX between unrelated data (the γ(K, IV) load
// MUXes). Gated functions like f2 fail the non-constant condition and
// XOR-merged functions like f8 fail disjointness.
func MuxSelectVars(f TT) []int {
	mask, _ := f.Support()
	var out []int
	for s := 0; s < MaxVars; s++ {
		if mask>>uint(s)&1 == 0 {
			continue
		}
		g := f.Cofactor(s, true)
		h := f.Cofactor(s, false)
		if g == Const0 || g == Const1 || h == Const0 || h == Const1 {
			continue
		}
		gm, _ := g.Support()
		hm, _ := h.Support()
		if gm&hm == 0 {
			out = append(out, s)
		}
	}
	return out
}

// ZeroMuxBranch returns f with the branch selected by s = val replaced
// by constant 0 — the generic form of the paper's fault β applied to a
// load MUX.
func ZeroMuxBranch(f TT, s int, val bool) TT {
	v := Var(s)
	if val {
		return And(Not(v), f.Cofactor(s, false))
	}
	return And(v, f.Cofactor(s, true))
}
