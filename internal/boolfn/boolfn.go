// Package boolfn provides Boolean functions of up to six variables
// represented as 64-bit truth tables, together with the operations the
// bitstream modification attack needs: input permutation, P-equivalence
// classes, support analysis, a small expression language, and the
// dual-output (O5/O6) LUT algebra of Xilinx 6-input LUTs.
//
// Conventions: variables are a1..a6 as in the paper. In a truth table
// tt, bit m (0 ≤ m < 64) holds f(a1..a6) for the assignment where
// a_{j+1} = (m >> j) & 1; that is, a1 is the least significant index bit.
package boolfn

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the LUT input count k of the targeted FPGA family.
const MaxVars = 6

// TT is a truth table of a Boolean function of up to 6 variables.
type TT uint64

// Const0 and Const1 are the two constant functions.
const (
	Const0 TT = 0
	Const1 TT = ^TT(0)
)

// varMasks[j] has bit m set iff (m>>j)&1 == 1: the truth table of a_{j+1}.
var varMasks = [MaxVars]TT{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// Var returns the truth table of variable a_{j+1}, 0 ≤ j < 6.
func Var(j int) TT {
	if j < 0 || j >= MaxVars {
		panic(fmt.Sprintf("boolfn: variable index %d out of range", j))
	}
	return varMasks[j]
}

// A returns the truth table of a_n using the paper's 1-based naming.
func A(n int) TT { return Var(n - 1) }

// And, Or, Xor, Not are the basic connectives on truth tables.
func And(f, g TT) TT { return f & g }
func Or(f, g TT) TT  { return f | g }
func Xor(f, g TT) TT { return f ^ g }
func Not(f TT) TT    { return ^f }

// Mux returns s ? t : e computed bitwise over the tables.
func Mux(s, t, e TT) TT { return (s & t) | (^s & e) }

// Eval evaluates the function at the assignment encoded in m (bit j of m
// is the value of a_{j+1}).
func (f TT) Eval(m uint) bool { return f>>(m&63)&1 == 1 }

// Bit returns F[m] as 0 or 1.
func (f TT) Bit(m uint) byte { return byte(f >> (m & 63) & 1) }

// OnSet returns the number of minterms on which f is 1.
func (f TT) OnSet() int { return bits.OnesCount64(uint64(f)) }

// Cofactor returns the cofactor of f with variable j fixed to val,
// expressed as a function that ignores variable j.
func (f TT) Cofactor(j int, val bool) TT {
	v := Var(j)
	var half TT
	if val {
		half = f & v
	} else {
		half = f &^ v
	}
	// Duplicate the kept half into both halves so the result is
	// independent of variable j.
	shift := uint(1) << uint(j)
	if val {
		return half | half>>shift
	}
	return half | half<<shift
}

// DependsOn reports whether f actually depends on variable j.
func (f TT) DependsOn(j int) bool {
	return f.Cofactor(j, false) != f.Cofactor(j, true)
}

// Support returns the bitmask of variables f depends on (bit j set for
// a_{j+1}) and the support size.
func (f TT) Support() (mask uint, size int) {
	for j := 0; j < MaxVars; j++ {
		if f.DependsOn(j) {
			mask |= 1 << uint(j)
			size++
		}
	}
	return mask, size
}

// SupportSize returns the number of variables f depends on.
func (f TT) SupportSize() int {
	_, n := f.Support()
	return n
}

// Permute returns the truth table of f with inputs reordered so that the
// new variable j reads the old variable perm[j]. perm must be a
// permutation of 0..5 (extend shorter permutations with identity).
func (f TT) Permute(perm []int) TT {
	var p [MaxVars]int
	for j := 0; j < MaxVars; j++ {
		p[j] = j
	}
	copy(p[:], perm)
	var out TT
	for m := uint(0); m < 64; m++ {
		var src uint
		for j := uint(0); j < MaxVars; j++ {
			if m>>j&1 == 1 {
				src |= 1 << uint(p[j])
			}
		}
		out |= TT(f>>src&1) << m
	}
	return out
}

// Permutations returns all permutations of 0..k-1 in a deterministic
// order. k ≤ 8 keeps this comfortably bounded (8! = 40320).
func Permutations(k int) [][]int {
	if k < 0 || k > 8 {
		panic("boolfn: Permutations supports 0 ≤ k ≤ 8")
	}
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(n int)
	rec = func(n int) {
		if n == 1 {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := 0; i < n; i++ {
			rec(n - 1)
			if n%2 == 0 {
				base[i], base[n-1] = base[n-1], base[i]
			} else {
				base[0], base[n-1] = base[n-1], base[0]
			}
		}
	}
	if k == 0 {
		return [][]int{{}}
	}
	rec(k)
	return out
}

var perms6 = Permutations(MaxVars)

// PClassCanon returns the canonical representative of the P-equivalence
// class of f: the minimum truth table over all input permutations. Two
// functions f, g satisfy PClassCanon(f) == PClassCanon(g) iff f can be
// transformed into g by permuting inputs (footnote 1 of the paper).
func PClassCanon(f TT) TT {
	min := f
	for _, p := range perms6 {
		if g := f.Permute(p); g < min {
			min = g
		}
	}
	return min
}

// PClass returns the distinct truth tables P-equivalent to f, sorted
// ascending. Its size divides 720.
func PClass(f TT) []TT {
	seen := make(map[TT]struct{}, 720)
	for _, p := range perms6 {
		seen[f.Permute(p)] = struct{}{}
	}
	out := make([]TT, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	// insertion sort: class sizes are small and this avoids importing sort
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PEquivalent reports whether f and g differ only by an input permutation.
func PEquivalent(f, g TT) bool { return PClassCanon(f) == PClassCanon(g) }

// String renders the truth table as 16 hex digits, most significant
// minterm first, matching the usual LUT INIT attribute notation.
func (f TT) String() string { return fmt.Sprintf("64'h%016X", uint64(f)) }

// Minterms lists the on-set assignments of f as variable-value strings,
// mainly for diagnostics.
func (f TT) Minterms() []string {
	var out []string
	for m := uint(0); m < 64; m++ {
		if f.Eval(m) {
			var b strings.Builder
			for j := MaxVars - 1; j >= 0; j-- {
				if m>>uint(j)&1 == 1 {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
			out = append(out, b.String())
		}
	}
	return out
}
