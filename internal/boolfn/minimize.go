package boolfn

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Quine–McCluskey two-level minimization for functions of up to six
// variables. Six variables means at most 64 minterms and 3^6 = 729
// possible product terms, so the exact algorithm (prime implicant
// generation plus a greedy set cover with essential-implicant
// extraction) is instantaneous. It is used to display discovered LUT
// functions in the paper's compact notation, e.g.
// 64'h0008080000000800 → "(a1^a2^a3)a4a5a6'" style products.

// implicant is a product term: care marks the variables that appear,
// val their required values (subset of care).
type implicant struct {
	care uint8
	val  uint8
}

// covers reports whether the implicant contains minterm m.
func (im implicant) covers(m uint8) bool { return m&im.care == im.val }

// term renders the implicant in paper notation ("a1a2'a5").
func (im implicant) term() string {
	if im.care == 0 {
		return "1"
	}
	var b strings.Builder
	for j := 0; j < MaxVars; j++ {
		if im.care>>uint(j)&1 == 0 {
			continue
		}
		fmt.Fprintf(&b, "a%d", j+1)
		if im.val>>uint(j)&1 == 0 {
			b.WriteByte('\'')
		}
	}
	return b.String()
}

// primeImplicants computes all prime implicants of f by iterative
// merging of adjacent implicants.
func primeImplicants(f TT) []implicant {
	if f == Const0 {
		return nil
	}
	current := map[implicant]bool{}
	for m := uint8(0); m < 64; m++ {
		if f.Eval(uint(m)) {
			current[implicant{care: 63, val: m}] = true
		}
	}
	var primes []implicant
	for len(current) > 0 {
		merged := map[implicant]bool{}
		used := map[implicant]bool{}
		list := make([]implicant, 0, len(current))
		for im := range current {
			list = append(list, im)
		}
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.care != b.care {
					continue
				}
				diff := a.val ^ b.val
				if bits.OnesCount8(diff) != 1 {
					continue
				}
				merged[implicant{care: a.care &^ diff, val: a.val &^ diff}] = true
				used[a], used[b] = true, true
			}
		}
		for im := range current {
			if !used[im] {
				primes = append(primes, im)
			}
		}
		current = merged
	}
	return primes
}

// Minimize returns a minimal (prime, irredundant, greedily minimized)
// sum-of-products for f in paper notation. Constants render as "0"/"1".
func Minimize(f TT) string {
	if f == Const0 {
		return "0"
	}
	if f == Const1 {
		return "1"
	}
	primes := primeImplicants(f)
	var minterms []uint8
	for m := uint8(0); m < 64; m++ {
		if f.Eval(uint(m)) {
			minterms = append(minterms, m)
		}
	}
	// Essential primes first, then greedy cover by coverage count.
	var chosen []implicant
	covered := map[uint8]bool{}
	for _, m := range minterms {
		var hit []implicant
		for _, p := range primes {
			if p.covers(m) {
				hit = append(hit, p)
			}
		}
		if len(hit) == 1 && !covered[m] {
			already := false
			for _, c := range chosen {
				if c == hit[0] {
					already = true
					break
				}
			}
			if !already {
				chosen = append(chosen, hit[0])
				for _, mm := range minterms {
					if hit[0].covers(mm) {
						covered[mm] = true
					}
				}
			}
		}
	}
	for {
		best, bestGain := implicant{}, 0
		for _, p := range primes {
			gain := 0
			for _, m := range minterms {
				if !covered[m] && p.covers(m) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = p, gain
			}
		}
		if bestGain == 0 {
			break
		}
		chosen = append(chosen, best)
		for _, m := range minterms {
			if best.covers(m) {
				covered[m] = true
			}
		}
	}
	terms := make([]string, len(chosen))
	for i, c := range chosen {
		terms[i] = c.term()
	}
	sort.Strings(terms)
	return strings.Join(terms, " + ")
}
