package boolfn

import (
	"strings"
	"testing"
)

// lift2 builds the 6-var table of a 2-var function given by its 4-entry
// truth table code (bit m = f(a1 = m&1, a2 = m>>1)).
func lift2(code uint8) TT {
	var f TT
	for m := uint(0); m < 64; m++ {
		idx := m & 3
		if code>>idx&1 == 1 {
			f |= 1 << m
		}
	}
	return f
}

func TestExhaustiveTwoVarFunctions(t *testing.T) {
	// All sixteen 2-variable functions: minimization round trips, P-class
	// partition is consistent, and XOR detection hits exactly XOR/XNOR.
	classTotal := map[TT]int{}
	for code := 0; code < 16; code++ {
		f := lift2(uint8(code))
		back, err := Parse(Minimize(f))
		if err != nil || back != f {
			t.Fatalf("code %x: minimize round trip failed (%v)", code, err)
		}
		classTotal[PClassCanon(f)]++
		pairs := XorPairs(f)
		isXorLike := code == 0b0110 || code == 0b1001
		hasPair01 := false
		for _, p := range pairs {
			if p == [2]int{0, 1} {
				hasPair01 = true
			}
		}
		if isXorLike && !hasPair01 {
			t.Fatalf("code %x: XOR structure not detected", code)
		}
		if !isXorLike && hasPair01 && f.DependsOn(0) && f.DependsOn(1) {
			t.Fatalf("code %x: spurious XOR pair", code)
		}
	}
	// 16 functions fall into 16/|classes| groups; every function counted.
	total := 0
	for _, n := range classTotal {
		total += n
	}
	if total != 16 {
		t.Fatalf("partition covers %d functions, want 16", total)
	}
}

func TestParseDeepNesting(t *testing.T) {
	expr := strings.Repeat("(", 200) + "a1" + strings.Repeat(")", 200)
	got, err := Parse(expr)
	if err != nil || got != A(1) {
		t.Fatalf("deep nesting failed: %v", err)
	}
}

func TestParseWhitespaceTorture(t *testing.T) {
	got, err := Parse("  a1   ^\t a2  \t^ a3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := Xor(Xor(A(1), A(2)), A(3))
	if got != want {
		t.Fatal("whitespace handling broken")
	}
}

func TestPermutationsSeven(t *testing.T) {
	if got := len(Permutations(7)); got != 5040 {
		t.Fatalf("len(Permutations(7)) = %d", got)
	}
}

func TestPermutationsRejectsLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > 8")
		}
	}()
	Permutations(9)
}

func TestCofactorConstants(t *testing.T) {
	for j := 0; j < MaxVars; j++ {
		if Const1.Cofactor(j, true) != Const1 || Const0.Cofactor(j, false) != Const0 {
			t.Fatal("constant cofactors wrong")
		}
	}
}

func TestSupportOfConstants(t *testing.T) {
	if n := Const0.SupportSize(); n != 0 {
		t.Fatalf("const0 support %d", n)
	}
	if n := Const1.SupportSize(); n != 0 {
		t.Fatalf("const1 support %d", n)
	}
}

func TestMintermsCount(t *testing.T) {
	f := MustParse("a1a2a3a4a5a6")
	ms := f.Minterms()
	if len(ms) != 1 || ms[0] != "111111" {
		t.Fatalf("Minterms = %v", ms)
	}
}

func TestPClassOfSymmetricFunctionIsSmall(t *testing.T) {
	// Fully symmetric functions are invariant under all permutations.
	parity := MustParse("a1^a2^a3^a4^a5^a6")
	if got := len(PClass(parity)); got != 1 {
		t.Fatalf("parity P-class size %d, want 1", got)
	}
}

func TestGatingHelperPolarities(t *testing.T) {
	// gating(3, 2, 1) = a4·ā5 (one positive, one negative control).
	got := gating(3, 2, 1)
	want := And(A(4), Not(A(5)))
	if got != want {
		t.Fatalf("gating = %v, want %v", got, want)
	}
}
