package boolfn

// This file implements the candidate-guessing logic of Section VI-B: the
// target node v is an XOR covered together with mode-switching MUX logic,
// so a k-LUT covering it computes XOR(n inputs) · AND(c control literals)
// — possibly with a linear feedback term XORed in. Because FINDLUT
// evaluates all input permutations, only the *multiset* of control
// polarities matters: "it is sufficient to consider c+1 choices rather
// than 2^c". Generating the families for c = 2 and 3 reproduces exactly
// the 21 rows of Table II.

// gating builds the AND of c control literals starting at variable
// `first` (0-based), with `pos` of them positive.
func gating(first, c, pos int) TT {
	acc := Const1
	for i := 0; i < c; i++ {
		lit := Var(first + i)
		if i >= pos {
			lit = Not(lit)
		}
		acc = And(acc, lit)
	}
	return acc
}

// xorOf builds a1 ⊕ ... ⊕ an.
func xorOf(n int) TT {
	acc := Const0
	for i := 0; i < n; i++ {
		acc = Xor(acc, Var(i))
	}
	return acc
}

// GenerateZCandidates enumerates the guessed functions for a LUT
// covering v on the keystream-output path: XOR(xorArity) gated by c
// control literals, for every control count in [minC, maxC] and every
// polarity multiset. For xorArity = 3, minC = 2, maxC = 3 this is rows
// f1–f7 of Table II.
func GenerateZCandidates(xorArity, minC, maxC int) []TT {
	if xorArity+maxC > MaxVars {
		panic("boolfn: candidate exceeds LUT inputs")
	}
	var out []TT
	for c := maxC; c >= minC; c-- {
		for pos := c; pos >= 0; pos-- {
			out = append(out, And(xorOf(xorArity), gating(xorArity, c, pos)))
		}
	}
	return out
}

// GenerateFeedbackCandidates enumerates the guessed functions for a LUT
// covering v on the LFSR feedback path: (a1 ⊕ a2) gated by control
// literals, XOR the linear feedback term, which itself may arrive gated
// by one further control. The three families (3 gates + plain linear,
// 2 gates + gated linear, 1 gate + gated linear) with all polarity
// multisets are rows f8–f21 of Table II.
func GenerateFeedbackCandidates() []TT {
	v := xorOf(2)
	var out []TT
	// Family A: v·(±a3)(±a4)(±a5) ⊕ a6 — polarity multisets of 3.
	for pos := 3; pos >= 0; pos-- {
		out = append(out, Xor(And(v, gating(2, 3, pos)), A(6)))
	}
	// Family B: v·(±a4)(±a5) ⊕ (±a3)·a6.
	for pos := 2; pos >= 0; pos-- {
		g := gating(3, 2, pos)
		out = append(out, Xor(And(v, g), And(A(3), A(6))))
		out = append(out, Xor(And(v, g), And(Not(A(3)), A(6))))
	}
	// Family C: v·(±a4) ⊕ (±a3)·a6.
	for pos := 1; pos >= 0; pos-- {
		g := gating(3, 1, pos)
		out = append(out, Xor(And(v, g), And(A(3), A(6))))
		out = append(out, Xor(And(v, g), And(Not(A(3)), A(6))))
	}
	return out
}

// GenerateCatalogue reproduces the full Table II candidate list from the
// Section VI-B reasoning. The result is P-classwise equal to
// Candidates(); the test suite pins this.
func GenerateCatalogue() []TT {
	out := GenerateZCandidates(3, 2, 3)
	return append(out, GenerateFeedbackCandidates()...)
}
