package boolfn

// Xilinx 7-series 6-input LUTs are fracturable: one physical LUT can
// implement either a single function of 6 variables on output O6, or two
// functions of up to 5 shared variables on outputs O5 and O6 with the a6
// input tied to the output selector (paper Fig. 4). In the 64-bit INIT
// value the a6=0 half (low 32 bits) drives O5 and the a6=1 half (high 32
// bits) drives O6.

// TT5 is a truth table over a1..a5 stored in the low 32 bits.
type TT5 uint32

// DualLUT is a fracturable LUT configured with two 5-input functions.
type DualLUT struct {
	O5 TT5 // a6 = 0 half
	O6 TT5 // a6 = 1 half
}

// Pack combines the two 5-input halves into a single 6-input INIT table.
func (d DualLUT) Pack() TT {
	return TT(d.O5) | TT(d.O6)<<32
}

// SplitDual decomposes a 6-input table into its two 5-input halves.
func SplitDual(f TT) DualLUT {
	return DualLUT{O5: TT5(f & 0xFFFFFFFF), O6: TT5(f >> 32)}
}

// Shared5 reports whether f can be realized in dual-output mode, i.e.
// whether it does not depend on a6 (then both halves are equal) — used by
// the mapper when deciding whether two functions can share one LUT.
func Shared5(f TT) bool { return !f.DependsOn(5) }

// Lower5 extends a 5-variable table to a 6-variable one independent of a6.
func Lower5(t TT5) TT { return TT(t) | TT(t)<<32 }

// Shrink5 projects a table independent of a6 down to 5 variables. It
// panics if f depends on a6.
func Shrink5(f TT) TT5 {
	if f.DependsOn(5) {
		panic("boolfn: Shrink5 of a function depending on a6")
	}
	return TT5(f & 0xFFFFFFFF)
}

// xor2Class5 is the set of 5-input truth tables P-equivalent to a1 ⊕ a2
// (as functions of a1..a5). Computed once; used by the countermeasure
// search for dual-output LUTs carrying a bare 2-input XOR in one half.
var xor2Class5 = func() map[TT5]struct{} {
	set := make(map[TT5]struct{})
	target := Xor(A(1), A(2))
	for _, g := range PClass(target) {
		if !g.DependsOn(5) {
			set[Shrink5(g)] = struct{}{}
		}
	}
	return set
}()

// IsXor2Half reports whether the 5-input table equals a 2-input XOR of
// some pair of its inputs (any of the C(5,2)=10 pairs, either polarity of
// packing order). This is the predicate of the paper's Section VII-B
// search: "the 2-input XOR in one half of their truth table".
func IsXor2Half(t TT5) bool {
	_, ok := xor2Class5[t]
	return ok
}

// DualXorCandidate reports whether a 64-bit LUT INIT corresponds to a
// dual-output LUT with a 2-input XOR on one output and any function of up
// to 5 dependent variables on the other — the profile of the protected
// implementation's trivially-cut target XORs.
func DualXorCandidate(f TT) bool {
	d := SplitDual(f)
	return IsXor2Half(d.O5) || IsXor2Half(d.O6)
}
