package boolfn

// Candidate is one row of the paper's Table II: a guessed 6-LUT function
// that may cover the target node v, together with the output path it
// belongs to.
type Candidate struct {
	Name string // f1..f21, as in Table II
	Path string // "zt" or "s15"
	Expr string // paper notation (parser syntax)
	TT   TT
}

// Table II of the paper lists the candidate Boolean functions for LUTs
// covering the target XOR v for c = 2 and 3 control variables. The
// catalogue is used both to drive FINDLUT during the attack and to label
// the LUTs the verification step confirms (LUT₁ = f2, LUT₂ = f8,
// LUT₃ = f19).
var candidateSpecs = []struct{ name, path, expr string }{
	{"f1", "zt", "(a1^a2^a3)a4a5a6"},
	{"f2", "zt", "(a1^a2^a3)a4a5!a6"},
	{"f3", "zt", "(a1^a2^a3)a4!a5!a6"},
	{"f4", "zt", "(a1^a2^a3)!a4!a5!a6"},
	{"f5", "zt", "(a1^a2^a3)!a4!a5"},
	{"f6", "zt", "(a1^a2^a3)!a4a5"},
	{"f7", "zt", "(a1^a2^a3)a4a5"},
	{"f8", "s15", "(a1^a2)!a3a4a5 ^ a6"},
	{"f9", "s15", "(a1^a2)!a3!a4a5 ^ a6"},
	{"f10", "s15", "(a1^a2)!a3!a4!a5 ^ a6"},
	{"f11", "s15", "(a1^a2)a3a4a5 ^ a6"},
	{"f12", "s15", "(a1^a2)a4a5 ^ a3a6"},
	{"f13", "s15", "(a1^a2)a4a5 ^ !a3a6"},
	{"f14", "s15", "(a1^a2)a4!a5 ^ a3a6"},
	{"f15", "s15", "(a1^a2)a4!a5 ^ !a3a6"},
	{"f16", "s15", "(a1^a2)!a4!a5 ^ a3a6"},
	{"f17", "s15", "(a1^a2)!a4!a5 ^ !a3a6"},
	{"f18", "s15", "(a1^a2)a4 ^ a3a6"},
	{"f19", "s15", "(a1^a2)!a4 ^ a3a6"},
	{"f20", "s15", "(a1^a2)a4 ^ !a3a6"},
	{"f21", "s15", "(a1^a2)!a4 ^ !a3a6"},
}

// Candidates returns the Table II catalogue in row order.
func Candidates() []Candidate {
	out := make([]Candidate, len(candidateSpecs))
	for i, s := range candidateSpecs {
		out[i] = Candidate{Name: s.name, Path: s.path, Expr: s.expr, TT: MustParse(s.expr)}
	}
	return out
}

// CandidateByName returns the Table II row with the given name (f1..f21)
// and whether it exists.
func CandidateByName(name string) (Candidate, bool) {
	for _, s := range candidateSpecs {
		if s.name == name {
			return Candidate{Name: s.name, Path: s.path, Expr: s.expr, TT: MustParse(s.expr)}, true
		}
	}
	return Candidate{}, false
}

// Fault-injected replacements from Section VI-D, equation (1) and the
// key-independence loop. The α fault removes the (a1 ⊕ a2) contribution of
// the FSM output word from the covered function.
var (
	// F2 is the confirmed LUT₁ function on the z_t path.
	F2 = MustParse("(a1^a2^a3)a4a5!a6")
	// F2Alpha keeps only s0 (= a3): used while probing which variable
	// pair of f2 is the FSM XOR v (fault α₂).
	F2Alpha = MustParse("a3a4a5!a6")
	// F8 is the confirmed LUT₂ function on the feedback path (24 bits).
	F8 = MustParse("(a1^a2)!a3a4a5 ^ a6")
	// F8Alpha is f8 with v stuck at 0 (fault α₁): only the linear term.
	F8Alpha = MustParse("a6")
	// F19 is the confirmed LUT₃ function on the feedback path (8 bits).
	F19 = MustParse("(a1^a2)!a4 ^ a3a6")
	// F19Alpha is f19 with v stuck at 0 (fault α₁).
	F19Alpha = MustParse("a3a6")
	// FMux2 is the dual-output 2-to-1 MUX LUT loading γ(K, IV) into an
	// LFSR stage (Section VI-D.2).
	FMux2 = MustParse("a6(a1a2 + !a1a3) + !a6(a1a4 + !a1a5)")
	// FMux2Alpha loads constant 0 instead of γ(K, IV) (fault β), assuming
	// the initial state is loaded when the control input a1 = 1.
	FMux2Alpha = MustParse("a6!a1a3 + !a6!a1a5")
)

// AlphaFault maps a confirmed candidate function to its stuck-at-0
// replacement, or returns false when the catalogue does not define one.
func AlphaFault(f TT) (TT, bool) {
	switch f {
	case F2:
		return Const0, true // whole-LUT zeroing used during verification
	case F8:
		return F8Alpha, true
	case F19:
		return F19Alpha, true
	case FMux2:
		return FMux2Alpha, true
	default:
		return 0, false
	}
}

// VPairs are the three possible input pairs of the FSM XOR v inside f2;
// the key-independent technique distinguishes among them with two
// keystream computations instead of 3^32 trials (Section VI-D).
var VPairs = [3][2]int{{0, 1}, {0, 2}, {1, 2}}

// F2AlphaKeep returns f2 with the XOR reduced to the single variable
// keep (0-based among a1..a3): the modification applied when testing
// whether the other two variables form the pair (a_i, a_j) of v.
func F2AlphaKeep(keep int) TT {
	gate := And(And(A(4), A(5)), Not(A(6)))
	return And(Var(keep), gate)
}
