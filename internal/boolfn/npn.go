package boolfn

// NPN classification: two functions are NPN-equivalent when one maps to
// the other by Negating inputs, Permuting inputs and/or Negating the
// output. FINDLUT and the Table II catalogue work with P-classes because
// the catalogue enumerates polarity variants explicitly; NPN canon is
// the coarser census view that also catches implementations which
// absorbed input or output inverters into the LUT.

// FlipVar complements variable j of f: f'(.., a_j, ..) = f(.., ¬a_j, ..).
func FlipVar(f TT, j int) TT {
	v := Var(j)
	s := uint(1) << uint(j)
	return (f&v)>>s | (f&^v)<<s
}

// NPNCanon returns the canonical representative of f's NPN class: the
// minimum table over all 720 input permutations × 64 input-polarity
// masks × 2 output polarities.
func NPNCanon(f TT) TT {
	min := ^TT(0)
	for _, p := range perms6 {
		base := f.Permute(p)
		for mask := 0; mask < 64; mask++ {
			g := base
			for j := 0; j < MaxVars; j++ {
				if mask>>uint(j)&1 == 1 {
					g = FlipVar(g, j)
				}
			}
			if g < min {
				min = g
			}
			if ng := ^g; ng < min {
				min = ng
			}
		}
	}
	return min
}

// NPNEquivalent reports whether f and g lie in the same NPN class.
func NPNEquivalent(f, g TT) bool { return NPNCanon(f) == NPNCanon(g) }
