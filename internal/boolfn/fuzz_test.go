package boolfn

import "testing"

// FuzzParse hardens the expression parser against arbitrary input: no
// panic, and anything Format produces must parse back to the same table.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(a1^a2^a3)a4a5!a6",
		"a6(a1a2 + !a1a3) + !a6(a1a4 + !a1a5)",
		"a1'a2' ^ 1",
		"((((a1))))",
		"!!!!a3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		tt, err := Parse(expr)
		if err != nil {
			return
		}
		back, err := Parse(Format(tt))
		if err != nil {
			t.Fatalf("Format produced unparseable output for %q: %v", expr, err)
		}
		if back != tt {
			t.Fatalf("Format/Parse not stable for %q", expr)
		}
	})
}
