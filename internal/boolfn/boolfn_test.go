package boolfn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVarTables(t *testing.T) {
	for j := 0; j < MaxVars; j++ {
		v := Var(j)
		for m := uint(0); m < 64; m++ {
			want := m>>uint(j)&1 == 1
			if v.Eval(m) != want {
				t.Fatalf("Var(%d).Eval(%d) = %v, want %v", j, m, v.Eval(m), want)
			}
		}
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Var(6)
}

func TestConnectives(t *testing.T) {
	f, g := A(1), A(2)
	for m := uint(0); m < 64; m++ {
		a, b := f.Eval(m), g.Eval(m)
		if And(f, g).Eval(m) != (a && b) {
			t.Fatal("And mismatch")
		}
		if Or(f, g).Eval(m) != (a || b) {
			t.Fatal("Or mismatch")
		}
		if Xor(f, g).Eval(m) != (a != b) {
			t.Fatal("Xor mismatch")
		}
		if Not(f).Eval(m) != !a {
			t.Fatal("Not mismatch")
		}
	}
}

func TestMux(t *testing.T) {
	s, a, b := A(6), A(1), A(2)
	m := Mux(s, a, b)
	for i := uint(0); i < 64; i++ {
		want := b.Eval(i)
		if s.Eval(i) {
			want = a.Eval(i)
		}
		if m.Eval(i) != want {
			t.Fatalf("Mux mismatch at %d", i)
		}
	}
}

func TestCofactorShannon(t *testing.T) {
	// Shannon expansion: f = a_j·f|a_j=1 ⊕ ā_j·f|a_j=0 must reconstruct f.
	f := func(raw uint64, jRaw uint8) bool {
		tt := TT(raw)
		j := int(jRaw) % MaxVars
		rebuilt := Or(And(Var(j), tt.Cofactor(j, true)), And(Not(Var(j)), tt.Cofactor(j, false)))
		return rebuilt == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCofactorIndependent(t *testing.T) {
	f := func(raw uint64, jRaw uint8) bool {
		j := int(jRaw) % MaxVars
		c := TT(raw).Cofactor(j, true)
		return !c.DependsOn(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSupport(t *testing.T) {
	f := MustParse("(a1^a2^a3)a4a5!a6")
	mask, size := f.Support()
	if mask != 0b111111 || size != 6 {
		t.Fatalf("f2 support = %06b (%d), want all six variables", mask, size)
	}
	g := MustParse("a3a6")
	mask, size = g.Support()
	if mask != 0b100100 || size != 2 {
		t.Fatalf("a3a6 support = %06b (%d)", mask, size)
	}
}

func TestPermuteIdentityAndComposition(t *testing.T) {
	f := func(raw uint64) bool {
		tt := TT(raw)
		if tt.Permute([]int{0, 1, 2, 3, 4, 5}) != tt {
			return false
		}
		p := []int{2, 0, 1, 5, 3, 4}
		q := []int{1, 2, 0, 4, 5, 3} // inverse of p
		return tt.Permute(p).Permute(q) == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteSwapsVariables(t *testing.T) {
	// Permuting a1 and a2 must map the function a1 to a2.
	got := A(1).Permute([]int{1, 0, 2, 3, 4, 5})
	if got != A(2) {
		t.Fatalf("swap permute of a1 = %v, want a2 %v", got, A(2))
	}
}

func TestPermutationsCount(t *testing.T) {
	counts := map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24, 5: 120, 6: 720}
	for k, want := range counts {
		if got := len(Permutations(k)); got != want {
			t.Errorf("len(Permutations(%d)) = %d, want %d", k, got, want)
		}
	}
}

func TestPermutationsDistinct(t *testing.T) {
	seen := make(map[[6]int]bool)
	for _, p := range Permutations(6) {
		var key [6]int
		copy(key[:], p)
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
}

func TestPClassInvariance(t *testing.T) {
	f := func(raw uint64, pIdx uint16) bool {
		tt := TT(raw)
		p := Permutations(6)[int(pIdx)%720]
		return PClassCanon(tt) == PClassCanon(tt.Permute(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPClassSizeDivides720(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tt := TT(rng.Uint64())
		n := len(PClass(tt))
		if 720%n != 0 {
			t.Fatalf("P-class size %d of %v does not divide 720", n, tt)
		}
	}
}

func TestPEquivalent(t *testing.T) {
	f := MustParse("(a1^a2^a3)a4a5!a6")
	g := MustParse("(a4^a5^a6)a1a2!a3")
	if !PEquivalent(f, g) {
		t.Fatal("input-permuted f2 variants not P-equivalent")
	}
	if PEquivalent(f, MustParse("(a1^a2^a3)a4a5a6")) {
		t.Fatal("f1 and f2 wrongly P-equivalent")
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		expr string
		want TT
	}{
		{"0", Const0},
		{"1", Const1},
		{"a1", A(1)},
		{"!a1", Not(A(1))},
		{"a1'", Not(A(1))},
		{"a1 & a2", And(A(1), A(2))},
		{"a1a2", And(A(1), A(2))},
		{"a1 ^ a2", Xor(A(1), A(2))},
		{"a1 | a2", Or(A(1), A(2))},
		{"a1 + a2", Or(A(1), A(2))},
		{"(a1^a2)a3", And(Xor(A(1), A(2)), A(3))},
		{"a6(a1a2 + !a1a3) + !a6(a1a4 + !a1a5)", Mux(A(6), Mux(A(1), A(2), A(3)), Mux(A(1), A(4), A(5)))},
	}
	for _, c := range cases {
		got, err := Parse(c.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{"", "a7", "a", "(a1", "a1 &", "a1 @ a2", "a1)b"} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", expr)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than XOR binds tighter than OR.
	got := MustParse("a1 ^ a2a3 | a4")
	want := Or(Xor(A(1), And(A(2), A(3))), A(4))
	if got != want {
		t.Fatalf("precedence: got %v, want %v", got, want)
	}
}

func TestCandidatesCatalogue(t *testing.T) {
	cands := Candidates()
	if len(cands) != 21 {
		t.Fatalf("catalogue has %d rows, want 21", len(cands))
	}
	zt, s15 := 0, 0
	for _, c := range cands {
		switch c.Path {
		case "zt":
			zt++
		case "s15":
			s15++
		default:
			t.Fatalf("candidate %s has unknown path %q", c.Name, c.Path)
		}
	}
	if zt != 7 || s15 != 14 {
		t.Fatalf("path split %d/%d, want 7 z_t rows and 14 s15 rows", zt, s15)
	}
	// All 21 candidate functions must be pairwise distinct.
	seen := make(map[TT]string)
	for _, c := range cands {
		if prev, dup := seen[c.TT]; dup {
			t.Fatalf("candidates %s and %s share a truth table", prev, c.Name)
		}
		seen[c.TT] = c.Name
	}
}

func TestCandidateByName(t *testing.T) {
	c, ok := CandidateByName("f19")
	if !ok || c.TT != F19 {
		t.Fatal("CandidateByName(f19) mismatch")
	}
	if _, ok := CandidateByName("f99"); ok {
		t.Fatal("CandidateByName accepted f99")
	}
}

func TestAlphaFaultSemantics(t *testing.T) {
	// Setting a1 = a2 (so a1 ⊕ a2 = 0) in f8 must agree with F8Alpha on
	// every assignment — the fault models the XOR output stuck at 0.
	for m := uint(0); m < 64; m++ {
		if m>>0&1 != m>>1&1 {
			continue // only assignments with a1 = a2
		}
		if F8.Eval(m) != F8Alpha.Eval(m) {
			t.Fatalf("F8Alpha diverges from f8|v=0 at %06b", m)
		}
		if F19.Eval(m) != F19Alpha.Eval(m) {
			t.Fatalf("F19Alpha diverges from f19|v=0 at %06b", m)
		}
	}
}

func TestMuxFaultSemantics(t *testing.T) {
	// FMux2Alpha must equal FMux2 with a2 and a4 (the γ(K, IV) data
	// inputs selected when a1 = 1) forced to 0 and the control a1 free:
	// whenever a1 = 0 the outputs agree, and whenever a1 = 1 the faulty
	// MUX outputs 0.
	for m := uint(0); m < 64; m++ {
		if m&1 == 0 {
			if FMux2.Eval(m) != FMux2Alpha.Eval(m) {
				t.Fatalf("β fault changed shift path at %06b", m)
			}
		} else if FMux2Alpha.Eval(m) {
			t.Fatalf("β fault still loads data at %06b", m)
		}
	}
}

func TestF2AlphaKeep(t *testing.T) {
	if F2AlphaKeep(2) != F2Alpha {
		t.Fatal("F2AlphaKeep(2) should equal the catalogue F2Alpha (keep a3)")
	}
	for keep := 0; keep < 3; keep++ {
		f := F2AlphaKeep(keep)
		if f.DependsOn((keep+1)%3) || f.DependsOn((keep+2)%3) {
			t.Fatalf("F2AlphaKeep(%d) still depends on a removed XOR input", keep)
		}
	}
}

func TestDualLUTPackRoundTrip(t *testing.T) {
	f := func(lo, hi uint32) bool {
		d := DualLUT{O5: TT5(lo), O6: TT5(hi)}
		return SplitDual(d.Pack()) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShared5(t *testing.T) {
	if !Shared5(MustParse("a1^a2")) {
		t.Fatal("a1^a2 should be realizable in dual mode")
	}
	if Shared5(MustParse("a1^a6")) {
		t.Fatal("a1^a6 depends on a6")
	}
}

func TestLower5Shrink5RoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		return Shrink5(Lower5(TT5(raw))) == TT5(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShrink5Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Shrink5(A(6))
}

func TestIsXor2Half(t *testing.T) {
	// Every pair (i, j) of distinct 5-input variables forms a valid hit.
	for i := 1; i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			x := Xor(A(i), A(j))
			if !IsXor2Half(Shrink5(x)) {
				t.Errorf("a%d^a%d not recognized as 2-input XOR half", i, j)
			}
		}
	}
	for _, expr := range []string{"a1^a2^a3", "a1a2", "a1", "0", "1"} {
		f := MustParse(expr)
		if f.DependsOn(5) {
			continue
		}
		if IsXor2Half(Shrink5(f)) {
			t.Errorf("%s wrongly recognized as 2-input XOR", expr)
		}
	}
}

func TestDualXorCandidate(t *testing.T) {
	// XOR on O5, arbitrary 5-var function on O6.
	d := DualLUT{O5: Shrink5(Xor(A(1), A(2))), O6: TT5(0xDEADBEEF)}
	if !DualXorCandidate(d.Pack()) {
		t.Fatal("dual LUT with XOR half not detected")
	}
	if DualXorCandidate(MustParse("a1a2a3")) {
		t.Fatal("AND3 wrongly detected as dual-XOR candidate")
	}
}

func TestFormatRoundTripViaParse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tt := TT(rng.Uint64())
		s := Format(tt)
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Format produced unparseable %q: %v", s, err)
		}
		if back != tt {
			t.Fatalf("Format/Parse round trip failed for %v via %q", tt, s)
		}
	}
}

func TestOnSet(t *testing.T) {
	if Const0.OnSet() != 0 || Const1.OnSet() != 64 || A(1).OnSet() != 32 {
		t.Fatal("OnSet counts wrong")
	}
}

func BenchmarkPermute(b *testing.B) {
	f := F2
	p := []int{2, 0, 1, 5, 3, 4}
	for i := 0; i < b.N; i++ {
		f = f.Permute(p)
	}
	_ = f
}

func BenchmarkPClassCanon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PClassCanon(F2)
	}
}

func TestGeneratedCatalogueMatchesTableII(t *testing.T) {
	// The Section VI-B generator must reproduce the 21 hardcoded Table II
	// rows exactly, as P-equivalence classes.
	gen := GenerateCatalogue()
	if len(gen) != 21 {
		t.Fatalf("generator produced %d candidates, want 21", len(gen))
	}
	genClasses := map[TT]bool{}
	for _, g := range gen {
		genClasses[PClassCanon(g)] = true
	}
	if len(genClasses) != 21 {
		t.Fatalf("generator produced %d distinct classes, want 21", len(genClasses))
	}
	for _, c := range Candidates() {
		if !genClasses[PClassCanon(c.TT)] {
			t.Errorf("Table II row %s (%s) not produced by the generator", c.Name, c.Expr)
		}
	}
}

func TestGenerateZCandidatesPolarityCounts(t *testing.T) {
	// c+1 polarity multisets per control count (the paper's observation
	// that permutations collapse 2^c choices to c+1).
	got := GenerateZCandidates(3, 2, 3)
	if len(got) != (3+1)+(2+1) {
		t.Fatalf("got %d candidates for c ∈ {2,3}, want 7", len(got))
	}
	seen := map[TT]bool{}
	for _, g := range got {
		canon := PClassCanon(g)
		if seen[canon] {
			t.Fatal("duplicate P-class in generated z candidates")
		}
		seen[canon] = true
	}
}

func TestGenerateZCandidatesBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too many inputs")
		}
	}()
	GenerateZCandidates(4, 3, 3)
}

func TestMinimizeRoundTrip(t *testing.T) {
	// The minimized SOP must parse back to exactly the same function.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		tt := TT(rng.Uint64())
		s := Minimize(tt)
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Minimize produced unparseable %q: %v", s, err)
		}
		if back != tt {
			t.Fatalf("Minimize round trip failed: %v → %q → %v", tt, s, back)
		}
	}
}

func TestMinimizeKnownForms(t *testing.T) {
	cases := map[string]string{
		"0":       Minimize(Const0),
		"1":       Minimize(Const1),
		"a3":      Minimize(A(3)),
		"a1a2":    Minimize(And(A(1), A(2))),
		"a1 + a2": Minimize(Or(A(1), A(2))),
		"a1'":     Minimize(Not(A(1))),
	}
	for want, got := range cases {
		if got != want {
			t.Errorf("Minimize = %q, want %q", got, want)
		}
	}
	// XOR2 has exactly two products.
	if got := Minimize(Xor(A(1), A(2))); strings.Count(got, "+") != 1 {
		t.Errorf("Minimize(a1^a2) = %q, want two products", got)
	}
}

func TestMinimizeNoLargerThanExactSOP(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		tt := TT(rng.Uint64())
		min := strings.Count(Minimize(tt), "+")
		exact := strings.Count(Format(tt), "+")
		if min > exact {
			t.Fatalf("Minimize has %d products, exact SOP %d for %v", min+1, exact+1, tt)
		}
	}
}

func TestMinimizeCoversPrimesOnly(t *testing.T) {
	// Every product of the f2 minimization must be an implicant of f2.
	f := F2
	s := Minimize(f)
	for _, term := range strings.Split(s, " + ") {
		p, err := Parse(term)
		if err != nil {
			t.Fatal(err)
		}
		if And(p, f) != p {
			t.Fatalf("product %q is not an implicant of f2", term)
		}
	}
}

func TestXorPairsOnCatalogue(t *testing.T) {
	// f2's XOR trio gives three pairs; f8/f19 expose exactly (a1, a2).
	if got := XorPairs(F2); len(got) != 3 {
		t.Fatalf("XorPairs(f2) = %v, want the 3 trio pairs", got)
	}
	for _, f := range []TT{F8, F19} {
		got := XorPairs(f)
		if len(got) != 1 || got[0] != [2]int{0, 1} {
			t.Fatalf("XorPairs = %v, want [(a1,a2)]", got)
		}
	}
	if got := XorPairs(And(A(1), A(2))); len(got) != 0 {
		t.Fatalf("AND2 has xor pairs %v", got)
	}
}

func TestXorGroupsTrio(t *testing.T) {
	groups := XorGroups(F2)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("XorGroups(f2) = %v, want one group of 3", groups)
	}
	if groups[0][0] != 0 || groups[0][1] != 1 || groups[0][2] != 2 {
		t.Fatalf("XorGroups(f2) = %v, want {a1,a2,a3}", groups)
	}
}

func TestXorPairsRandomizedConsistency(t *testing.T) {
	// Any function constructed as (ai ⊕ aj)·g ⊕ h with g, h independent
	// of ai, aj must expose the pair.
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(6)
		j := (i + 1 + rng.Intn(5)) % 6
		// Random g, h over the other four variables.
		g := TT(rng.Uint64())
		h := TT(rng.Uint64())
		for _, v := range []int{i, j} {
			g = g.Cofactor(v, false)
			h = h.Cofactor(v, false)
		}
		f := Xor(And(Xor(Var(i), Var(j)), g), h)
		found := false
		for _, p := range XorPairs(f) {
			if (p[0] == i && p[1] == j) || (p[0] == j && p[1] == i) {
				found = true
			}
		}
		if !found && f.DependsOn(i) {
			t.Fatalf("trial %d: constructed pair (%d,%d) not detected in %v", trial, i, j, f)
		}
	}
}

func TestStuckXorZeroMatchesCatalogueFaults(t *testing.T) {
	// The generic stuck-at-0 fault must reproduce the paper's eq. (1).
	if got := StuckXorZero(F8, []int{0, 1}); got != F8Alpha {
		t.Fatalf("StuckXorZero(f8) = %v, want a6", got)
	}
	if got := StuckXorZero(F19, []int{0, 1}); got != F19Alpha {
		t.Fatalf("StuckXorZero(f19) = %v, want a3a6", got)
	}
	// For f2's trio, sticking (a1, a2) keeps a3's path: the generic form
	// of F2AlphaKeep(2).
	if got := StuckXorZero(F2, []int{0, 1}); got != F2AlphaKeep(2) {
		t.Fatalf("StuckXorZero(f2, {a1,a2}) = %v, want a3a4a5!a6", got)
	}
}

func TestFlipVarInvolution(t *testing.T) {
	f := func(raw uint64, jRaw uint8) bool {
		j := int(jRaw) % MaxVars
		tt := TT(raw)
		return FlipVar(FlipVar(tt, j), j) == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipVarSemantics(t *testing.T) {
	// FlipVar(f, j) evaluated at m equals f at m with bit j toggled.
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		tt := TT(rng.Uint64())
		j := rng.Intn(MaxVars)
		g := FlipVar(tt, j)
		for m := uint(0); m < 64; m++ {
			if g.Eval(m) != tt.Eval(m^(1<<uint(j))) {
				t.Fatalf("FlipVar wrong at m=%d j=%d", m, j)
			}
		}
	}
}

func TestNPNCanonInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 15; trial++ {
		tt := TT(rng.Uint64())
		canon := NPNCanon(tt)
		// Random NPN transform: permute, flip inputs, maybe flip output.
		g := tt.Permute(Permutations(6)[rng.Intn(720)])
		for j := 0; j < MaxVars; j++ {
			if rng.Intn(2) == 1 {
				g = FlipVar(g, j)
			}
		}
		if rng.Intn(2) == 1 {
			g = Not(g)
		}
		if NPNCanon(g) != canon {
			t.Fatalf("trial %d: NPN canon not invariant", trial)
		}
	}
}

func TestNPNCoarserThanP(t *testing.T) {
	// All the AND2-with-polarities forms collapse to one NPN class but
	// occupy several P-classes.
	variants := []TT{
		And(A(1), A(2)),
		And(Not(A(1)), A(2)),
		And(Not(A(1)), Not(A(2))),
		Or(A(1), A(2)), // = ¬(¬a1·¬a2)
	}
	canon := NPNCanon(variants[0])
	pClasses := map[TT]bool{}
	for _, v := range variants {
		if NPNCanon(v) != canon {
			t.Fatalf("%v not NPN-equivalent to AND2", v)
		}
		pClasses[PClassCanon(v)] = true
	}
	if len(pClasses) < 3 {
		t.Fatalf("expected ≥ 3 P-classes among AND2 variants, got %d", len(pClasses))
	}
	// f2 and f1 (different gating polarity) merge under NPN.
	f1, _ := CandidateByName("f1")
	if !NPNEquivalent(F2, f1.TT) {
		t.Fatal("f1 and f2 should be NPN-equivalent (polarity variants)")
	}
}

func TestParseInit(t *testing.T) {
	f := F2
	got, err := ParseInit(f.String())
	if err != nil || got != f {
		t.Fatalf("ParseInit(String()) round trip failed: %v", err)
	}
	if _, err := ParseInit("64'hZZZ"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseInit("64'h11112222333344445"); err == nil {
		t.Fatal("17 digits accepted")
	}
	v, err := ParseInit("0xff")
	if err != nil || v != TT(0xFF) {
		t.Fatal("0x prefix failed")
	}
}

func TestWalshParseval(t *testing.T) {
	// Parseval: Σ W[u]² = 64² for every Boolean function.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 50; trial++ {
		w := Walsh(TT(rng.Uint64()))
		sum := 0
		for _, c := range w {
			sum += c * c
		}
		if sum != 64*64 {
			t.Fatalf("Parseval violated: %d", sum)
		}
	}
}

func TestWalshKnownValues(t *testing.T) {
	// Constant 0: W[0] = 64, all else 0. A bare variable a1: W at index
	// u = 000001 is ±64, all else 0.
	w := Walsh(Const0)
	if w[0] != 64 {
		t.Fatalf("W[0] of const0 = %d", w[0])
	}
	for u := 1; u < 64; u++ {
		if w[u] != 0 {
			t.Fatalf("const0 spectrum leaks at %d", u)
		}
	}
	w = Walsh(A(1))
	if w[1] != -64 && w[1] != 64 {
		t.Fatalf("variable spectrum W[1] = %d", w[1])
	}
}

func TestSignatureIsPInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	perms := Permutations(6)
	for trial := 0; trial < 30; trial++ {
		f := TT(rng.Uint64())
		sig := Signature(f)
		g := f.Permute(perms[rng.Intn(720)])
		if !Signature(g).Equal(sig) {
			t.Fatalf("trial %d: signature not P-invariant", trial)
		}
	}
}

func TestSpectralPreFilterSoundness(t *testing.T) {
	// The pre-filter must never reject a genuinely P-equivalent pair and
	// must reject most random pairs.
	rng := rand.New(rand.NewSource(93))
	perms := Permutations(6)
	for trial := 0; trial < 20; trial++ {
		f := TT(rng.Uint64())
		g := f.Permute(perms[rng.Intn(720)])
		if !MaybePEquivalent(f, g) {
			t.Fatal("pre-filter rejected a P-equivalent pair")
		}
	}
	rejected := 0
	for trial := 0; trial < 40; trial++ {
		if !MaybePEquivalent(TT(rng.Uint64()), TT(rng.Uint64())) {
			rejected++
		}
	}
	if rejected < 35 {
		t.Fatalf("pre-filter rejected only %d/40 random pairs", rejected)
	}
	// Consistency with the exact check on the catalogue.
	for _, a := range Candidates() {
		for _, b := range Candidates() {
			if PEquivalent(a.TT, b.TT) && !MaybePEquivalent(a.TT, b.TT) {
				t.Fatalf("pre-filter contradicts exact check for %s/%s", a.Name, b.Name)
			}
		}
	}
}

func BenchmarkSpectralPreFilterVsExact(b *testing.B) {
	f, g := F2, F8
	b.Run("spectral", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaybePEquivalent(f, g)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PEquivalent(f, g)
		}
	})
}

func TestMuxSelectVars(t *testing.T) {
	if got := MuxSelectVars(MustParse("a1a2 + !a1a3")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("mux3 select vars = %v, want [a1]", got)
	}
	if got := MuxSelectVars(MustParse("a1(a2^a3) + !a1a4")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("mux-xor select vars = %v", got)
	}
	for _, f := range []TT{F2, F8, F19} {
		if got := MuxSelectVars(f); len(got) != 0 {
			t.Fatalf("catalogue function wrongly mux-classified: %v", got)
		}
	}
}

func TestZeroMuxBranch(t *testing.T) {
	mux := MustParse("a1a2 + !a1a3")
	if got := ZeroMuxBranch(mux, 0, true); got != MustParse("!a1a3") {
		t.Fatalf("ZeroMuxBranch sel1 = %v", got)
	}
	if got := ZeroMuxBranch(mux, 0, false); got != MustParse("a1a2") {
		t.Fatalf("ZeroMuxBranch sel0 = %v", got)
	}
}
