package boolfn

import "sync"

// The FINDLUT candidate expansion permutes the target function through
// all k! = 720 input orders before serializing it into byte patterns.
// In the multi-bitstream serving scenario the same handful of catalogue
// functions is expanded over and over for every incoming image, so the
// permuted-table sets are cached process-wide. The expansion is pure
// (truth tables are values), which makes the cache a plain memo.

// PermTable is one input-permuted version of a function: the permuted
// truth table together with the permutation that produced it.
type PermTable struct {
	Table TT
	Perm  []int
}

type permKey struct {
	f     TT
	dedup bool
}

var (
	permMu    sync.RWMutex
	permCache = map[permKey][]PermTable{}
	permHits  int
	permMiss  int
)

// permCacheMax bounds the memo so a server scanning adversarial inputs
// cannot grow it without limit; past the cap, expansions are computed but
// not retained.
const permCacheMax = 1 << 12

// PermutedTables expands f over all 6! input permutations in the
// deterministic Permutations order. With dedup set, permutations whose
// permuted truth table was already produced by an earlier permutation are
// dropped (the symmetry pruning of the optimized FINDLUT); without it the
// full 720-entry expansion is returned (Algorithm 1 as written). Results
// are cached process-wide; callers must treat the returned slice and its
// Perm slices as read-only.
func PermutedTables(f TT, dedup bool) []PermTable {
	key := permKey{f: f, dedup: dedup}
	permMu.RLock()
	cached, ok := permCache[key]
	permMu.RUnlock()
	if ok {
		permMu.Lock()
		permHits++
		permMu.Unlock()
		return cached
	}
	perms := Permutations(MaxVars)
	out := make([]PermTable, 0, len(perms))
	var seen map[TT]bool
	if dedup {
		seen = make(map[TT]bool, len(perms))
	}
	for _, p := range perms {
		table := f.Permute(p)
		if dedup {
			if seen[table] {
				continue
			}
			seen[table] = true
		}
		out = append(out, PermTable{Table: table, Perm: p})
	}
	permMu.Lock()
	permMiss++
	if _, raced := permCache[key]; !raced && len(permCache) < permCacheMax {
		permCache[key] = out
	}
	permMu.Unlock()
	return out
}

// PermCacheStats reports the process-wide permuted-table cache counters:
// lookups served from the memo, expansions computed, and entries held.
func PermCacheStats() (hits, misses, entries int) {
	permMu.RLock()
	defer permMu.RUnlock()
	return permHits, permMiss, len(permCache)
}

// ResetPermCache clears the permuted-table memo and its counters
// (benchmarks and tests that measure the cold path).
func ResetPermCache() {
	permMu.Lock()
	defer permMu.Unlock()
	permCache = map[permKey][]PermTable{}
	permHits, permMiss = 0, 0
}
