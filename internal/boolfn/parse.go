package boolfn

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse evaluates a Boolean expression over variables a1..a6 into a truth
// table. The grammar, in decreasing binding strength:
//
//	atom   := 'a' digit | '0' | '1' | '!' atom | '~' atom | '(' expr ')'
//	term   := atom { ('&' | '*' | juxtaposition) atom }
//	xorexp := term { '^' term }
//	expr   := xorexp { ('|' | '+') xorexp }
//
// Juxtaposition (as in the paper's "a4a5") means AND, and '+' means OR as
// in the paper's MUX expressions. A trailing apostrophe (a3') or an
// overline-substitute '!' denotes complement.
func Parse(s string) (TT, error) {
	p := &parser{src: s}
	tt, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("boolfn: trailing input %q at offset %d", p.src[p.pos:], p.pos)
	}
	return tt, nil
}

// MustParse is Parse for statically known expressions; it panics on error.
func MustParse(s string) TT {
	tt, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return tt
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseExpr() (TT, error) {
	left, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '|', '+':
			p.pos++
			right, err := p.parseXor()
			if err != nil {
				return 0, err
			}
			left |= right
		default:
			return left, nil
		}
	}
}

func (p *parser) parseXor() (TT, error) {
	left, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for p.peek() == '^' {
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return 0, err
		}
		left ^= right
	}
	return left, nil
}

// startsAtom reports whether c can begin an atom, used to detect the
// juxtaposition form of AND.
func startsAtom(c byte) bool {
	return c == 'a' || c == '0' || c == '1' || c == '!' || c == '~' || c == '('
}

func (p *parser) parseTerm() (TT, error) {
	left, err := p.parseAtom()
	if err != nil {
		return 0, err
	}
	for {
		c := p.peek()
		if c == '&' || c == '*' {
			p.pos++
			right, err := p.parseAtom()
			if err != nil {
				return 0, err
			}
			left &= right
			continue
		}
		if startsAtom(c) {
			right, err := p.parseAtom()
			if err != nil {
				return 0, err
			}
			left &= right
			continue
		}
		return left, nil
	}
}

func (p *parser) parseAtom() (TT, error) {
	switch c := p.peek(); c {
	case '!', '~':
		p.pos++
		inner, err := p.parseAtom()
		if err != nil {
			return 0, err
		}
		return ^inner, nil
	case '(':
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, fmt.Errorf("boolfn: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return p.postfix(inner), nil
	case '0':
		p.pos++
		return p.postfix(Const0), nil
	case '1':
		p.pos++
		return p.postfix(Const1), nil
	case 'a':
		p.pos++
		if p.pos >= len(p.src) {
			return 0, fmt.Errorf("boolfn: dangling 'a' at end of input")
		}
		n, err := strconv.Atoi(string(p.src[p.pos]))
		if err != nil || n < 1 || n > MaxVars {
			return 0, fmt.Errorf("boolfn: bad variable a%c at offset %d", p.src[p.pos], p.pos)
		}
		p.pos++
		return p.postfix(A(n)), nil
	case 0:
		return 0, fmt.Errorf("boolfn: unexpected end of input")
	default:
		return 0, fmt.Errorf("boolfn: unexpected %q at offset %d", c, p.pos)
	}
}

// postfix applies any trailing complement apostrophes.
func (p *parser) postfix(tt TT) TT {
	for p.pos < len(p.src) && p.src[p.pos] == '\'' {
		tt = ^tt
		p.pos++
	}
	return tt
}

// Format renders f as a sum of products over its support, in the paper's
// notation (juxtaposition for AND, ⊕ never appears — the SOP is exact but
// not minimal). Intended for logs and the CLI, not for round-tripping.
func Format(f TT) string {
	if f == Const0 {
		return "0"
	}
	if f == Const1 {
		return "1"
	}
	mask, _ := f.Support()
	var terms []string
	for m := uint(0); m < 64; m++ {
		// Only enumerate assignments canonical on the support: variables
		// outside the support fixed to 0.
		if uint64(m)&^uint64(mask) != 0 {
			continue
		}
		if !f.Eval(m) {
			continue
		}
		var b strings.Builder
		for j := 0; j < MaxVars; j++ {
			if mask>>uint(j)&1 == 0 {
				continue
			}
			if m>>uint(j)&1 == 1 {
				fmt.Fprintf(&b, "a%d", j+1)
			} else {
				fmt.Fprintf(&b, "a%d'", j+1)
			}
		}
		terms = append(terms, b.String())
	}
	return strings.Join(terms, " + ")
}

// ParseInit parses the Xilinx INIT attribute notation "64'hFFF7F7FF00080800"
// (as printed by TT.String) or a bare 16-digit hex string into a truth
// table.
func ParseInit(s string) (TT, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "64'h")
	s = strings.TrimPrefix(s, "0x")
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("boolfn: bad INIT literal %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("boolfn: bad INIT literal %q: %v", s, err)
	}
	return TT(v), nil
}

// ParseAuto dispatches on the expression shape: strings carrying an
// INIT prefix ("64'h..." or "0x...") parse as truth-table literals,
// everything else as paper-notation Boolean expressions. This is the
// one place user-facing tools (facade, CLI, service jobs) decide which
// grammar a function string is in.
func ParseAuto(s string) (TT, error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "64'h") || strings.HasPrefix(t, "0x") {
		return ParseInit(t)
	}
	return Parse(t)
}
