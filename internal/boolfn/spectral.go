package boolfn

import (
	"math/bits"
	"sort"
)

// Spectral techniques (the paper's reference [30], Hurst/Miller/Muzio,
// "Spectral Techniques in Digital Logic"): the Walsh–Hadamard spectrum of
// a Boolean function is permuted-within-weight-classes by input
// permutation, so the multiset of coefficient magnitudes per index weight
// is a P-class invariant. It provides a cheap necessary condition for
// P-equivalence that filters candidates before the exact 720-permutation
// check.

// Walsh returns the Walsh–Hadamard spectrum of f in (1, −1) encoding:
// W[u] = Σ_x (−1)^{f(x) ⊕ (u·x)}.
func Walsh(f TT) [64]int {
	var w [64]int
	for x := uint(0); x < 64; x++ {
		if f.Eval(x) {
			w[x] = -1
		} else {
			w[x] = 1
		}
	}
	// Fast Walsh–Hadamard transform.
	for step := 1; step < 64; step <<= 1 {
		for i := 0; i < 64; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := w[j], w[j+step]
				w[j], w[j+step] = a+b, a-b
			}
		}
	}
	return w
}

// SpectralSignature returns a P-class invariant: for each index weight
// 0..6 the sorted magnitudes of the Walsh coefficients whose index has
// that popcount. Two P-equivalent functions have equal signatures (the
// converse does not hold in general).
type SpectralSignature [7][]int

// Signature computes the spectral signature of f.
func Signature(f TT) SpectralSignature {
	w := Walsh(f)
	var sig SpectralSignature
	for u := 0; u < 64; u++ {
		v := w[u]
		if v < 0 {
			v = -v
		}
		k := bits.OnesCount8(uint8(u))
		sig[k] = append(sig[k], v)
	}
	for k := range sig {
		sort.Ints(sig[k])
	}
	return sig
}

// Equal compares two signatures.
func (s SpectralSignature) Equal(o SpectralSignature) bool {
	for k := range s {
		if len(s[k]) != len(o[k]) {
			return false
		}
		for i := range s[k] {
			if s[k][i] != o[k][i] {
				return false
			}
		}
	}
	return true
}

// MaybePEquivalent is the spectral pre-filter: false means definitely not
// P-equivalent; true means the exact permutation check is still needed.
func MaybePEquivalent(f, g TT) bool {
	return Signature(f).Equal(Signature(g))
}
